/**
 * @file
 * Serving-API tests for the Engine/Session split: batched-vs-sequential
 * Decision bit-identity across thread counts, concurrent sessions over
 * one shared DetectorModel, allocation-free session steady state, and
 * the DetectorModel save/load round trip.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <stdexcept>
#include <thread>
#include <unistd.h>

#include "common/alloc_probe.hh"
#include "common/test_models.hh"
#include "core/detector.hh"
#include "core/detector_model.hh"
#include "core/detector_session.hh"
#include "util/rng.hh"
#include "util/thread_pool.hh"

// Shared with other test files through common/alloc_probe.hh (the
// replacement below can exist only once per program).
std::atomic<std::size_t> g_test_allocs{0};

namespace
{
std::atomic<std::size_t> &g_allocs = g_test_allocs;
} // namespace

// Count every heap allocation in the test binary (pure counting, no
// behavior change) so the session steady state can be shown to perform
// none — the same probe perf_smoke uses.
void *
operator new(std::size_t n)
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(n ? n : 1))
        return p;
    throw std::bad_alloc();
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace ptolemy::core
{
namespace
{

int
numWeighted()
{
    return static_cast<int>(
        ptolemy::testing::world().net.weightedNodes().size());
}

/** Mixed clean/perturbed inputs the decisions are probed on. */
std::vector<nn::Tensor>
probeInputs(std::size_t n)
{
    auto &w = ptolemy::testing::world();
    Rng rng(0xD37EC7);
    std::vector<nn::Tensor> xs;
    for (std::size_t i = 0; i < n; ++i) {
        nn::Tensor x = w.dataset.test[i % w.dataset.test.size()].input;
        if (i % 2 == 1)
            for (std::size_t e = 0; e < x.size(); ++e)
                x[e] += static_cast<float>(rng.uniform(-0.08, 0.08));
        xs.push_back(std::move(x));
    }
    return xs;
}

/** One fully-fitted model (class paths + forest) over the shared
 *  trained world, built once per test process. */
const DetectorModel &
fittedModel()
{
    static const DetectorModel model = [] {
        auto &w = ptolemy::testing::world();
        DetectorBuilder bld(
            w.net, path::ExtractionConfig::bwCu(numWeighted(), 0.5), 10);
        bld.profileClassPaths(w.dataset.train, 30);

        // Fit on clean-vs-perturbed feature rows: cheap, deterministic,
        // and enough signal for the decisions to be non-degenerate.
        Rng rng(0x51AB);
        std::vector<nn::Tensor> clean, noisy;
        for (std::size_t i = 0; i < 24; ++i) {
            const auto &s = w.dataset.test[i];
            clean.push_back(s.input);
            nn::Tensor x = s.input;
            for (std::size_t e = 0; e < x.size(); ++e)
                x[e] += static_cast<float>(rng.uniform(-0.1, 0.1));
            noisy.push_back(std::move(x));
        }
        classify::FeatureMatrix benign, adversarial;
        bld.featuresBatch(clean, benign);
        bld.featuresBatch(noisy, adversarial);
        bld.fitClassifier(benign, adversarial);
        return std::move(bld).build();
    }();
    return model;
}

void
expectDecisionsEqual(const Decision &a, const Decision &b,
                     const std::string &what)
{
    EXPECT_EQ(a.predictedClass, b.predictedClass) << what;
    EXPECT_EQ(a.adversarial, b.adversarial) << what;
    EXPECT_EQ(a.score, b.score) << what; // bitwise: doubles must match
    EXPECT_EQ(a.features.overall, b.features.overall) << what;
    ASSERT_EQ(a.features.perLayer.size(), b.features.perLayer.size())
        << what;
    for (std::size_t l = 0; l < a.features.perLayer.size(); ++l)
        EXPECT_EQ(a.features.perLayer[l], b.features.perLayer[l])
            << what << " layer " << l;
}

TEST(DetectorApi, DetectBatchMatchesSequentialAcrossThreadCounts)
{
    const auto &model = fittedModel();
    const auto xs = probeInputs(13);

    // Sequential reference: one warmed session, detect() per input.
    DetectorSession ref_sess(model);
    std::vector<Decision> ref;
    for (const auto &x : xs)
        ref.push_back(ref_sess.detect(x));

    for (unsigned threads : {1u, 2u, 8u}) {
        ThreadPool pool(threads);
        DetectorSession sess(model);
        std::vector<Decision> out;
        // Round 2 reuses every warmed buffer: must be as clean as
        // round 1.
        for (int round = 0; round < 2; ++round) {
            sess.detectBatch(xs, out, &pool);
            ASSERT_EQ(out.size(), ref.size());
            for (std::size_t i = 0; i < ref.size(); ++i)
                expectDecisionsEqual(
                    out[i], ref[i],
                    "threads=" + std::to_string(threads) + " round=" +
                        std::to_string(round) + " sample " +
                        std::to_string(i));
        }
    }
}

TEST(DetectorApi, TwoConcurrentSessionsShareOneModel)
{
    const auto &model = fittedModel();
    const auto xs = probeInputs(16);

    DetectorSession ref_sess(model);
    std::vector<Decision> ref;
    for (const auto &x : xs)
        ref.push_back(ref_sess.detect(x));

    // Two client threads, each with its own session, hammering the one
    // shared (immutable) model concurrently. This is the test the CI
    // ThreadSanitizer leg runs.
    std::vector<Decision> got_a(xs.size()), got_b(xs.size());
    auto client = [&](std::vector<Decision> &got) {
        DetectorSession sess(model);
        for (int round = 0; round < 3; ++round)
            for (std::size_t i = 0; i < xs.size(); ++i)
                got[i] = sess.detect(xs[i]);
    };
    std::thread ta(client, std::ref(got_a));
    std::thread tb(client, std::ref(got_b));
    ta.join();
    tb.join();

    for (std::size_t i = 0; i < xs.size(); ++i) {
        expectDecisionsEqual(got_a[i], ref[i],
                             "session A sample " + std::to_string(i));
        expectDecisionsEqual(got_b[i], ref[i],
                             "session B sample " + std::to_string(i));
    }
}

TEST(DetectorApi, SessionReuseIsAllocationFreeAfterWarmup)
{
    const auto &model = fittedModel();
    const auto xs = probeInputs(8);
    std::vector<const nn::Tensor *> xptrs;
    for (const auto &x : xs)
        xptrs.push_back(&x);

    // A pinned 1-thread pool makes the warm-up deterministic: slot 0
    // sees every sample in the first batch, so its workspace high-water
    // marks are final after one round. (Multi-threaded 0-alloc steady
    // state is asserted by perf_smoke, whose warm-until-quiescent loop
    // matches the pool it measures under — with a dynamic slot↔sample
    // schedule, a slot can meet its costliest sample late, so a fixed
    // warm-up round count would be scheduling-dependent here.)
    ThreadPool pool(1);
    DetectorSession sess(model);
    std::vector<Decision> out(xs.size());
    const std::span<const nn::Tensor *const> xspan(xptrs.data(),
                                                   xptrs.size());
    const std::span<Decision> ospan(out.data(), out.size());

    // Two warm batches: the first grows every buffer, the second
    // settles copy-assign capacity effects.
    sess.detectBatch(xspan, ospan, &pool);
    sess.detectBatch(xspan, ospan, &pool);

    const std::size_t before = g_allocs.load(std::memory_order_relaxed);
    for (int i = 0; i < 10; ++i)
        sess.detectBatch(xspan, ospan, &pool);
    EXPECT_EQ(g_allocs.load(std::memory_order_relaxed), before)
        << "steady-state detectBatch performed heap allocations";

    // Single-stream detect shares the warmed slot-0 scratch, but the
    // returned Decision owns vectors — route it through a warmed
    // destination instead.
    Decision d = sess.detect(xs[0]);
    const std::size_t before_single =
        g_allocs.load(std::memory_order_relaxed);
    for (int i = 0; i < 10; ++i)
        sess.detectBatch(xspan.subspan(0, 1),
                         std::span<Decision>(&d, 1), &pool);
    EXPECT_EQ(g_allocs.load(std::memory_order_relaxed), before_single)
        << "steady-state single-sample serving performed allocations";
}

TEST(DetectorApi, EmptyBatchIsANoOp)
{
    const auto &model = fittedModel();
    DetectorSession sess(model);

    // Span form: no pool touch, no scratch growth, no allocation.
    const std::size_t before = g_allocs.load(std::memory_order_relaxed);
    sess.detectBatch(std::span<const nn::Tensor *const>(),
                     std::span<Decision>());
    EXPECT_EQ(g_allocs.load(std::memory_order_relaxed), before)
        << "empty detectBatch allocated";

    // Vector convenience form: out is cleared to match.
    std::vector<nn::Tensor> xs;
    std::vector<Decision> out(3);
    sess.detectBatch(xs, out);
    EXPECT_TRUE(out.empty());
}

TEST(DetectorApi, MismatchedSpanLengthsAreRejected)
{
    const auto &model = fittedModel();
    const auto xs = probeInputs(2);
    std::vector<const nn::Tensor *> xptrs{&xs[0], &xs[1]};
    std::vector<Decision> out(1); // one short: caller bug
    DetectorSession sess(model);

    const std::span<const nn::Tensor *const> xspan(xptrs.data(), 2);
    const std::span<Decision> ospan(out.data(), 1);
#ifdef NDEBUG
    EXPECT_THROW(sess.detectBatch(xspan, ospan), std::invalid_argument);
#else
    EXPECT_DEATH(sess.detectBatch(xspan, ospan), "span lengths differ");
#endif
}

TEST(DetectorApi, SaveLoadRoundTripDetectsBitIdentically)
{
    auto &w = ptolemy::testing::world();
    const auto &model = fittedModel();
    const auto xs = probeInputs(10);
    const std::string path = "detector_api_roundtrip.model";
    ASSERT_TRUE(model.save(path));

    // Load into a model constructed with a *different* config: load
    // must replace it wholesale (config travels with the artifacts).
    DetectorModel loaded(
        w.net, path::ExtractionConfig::bwCu(numWeighted(), 0.3), 10);
    ASSERT_NO_THROW(loaded.load(path));
    EXPECT_EQ(loaded.variantName(), model.variantName());
    EXPECT_EQ(loaded.classPaths().numBits(), model.classPaths().numBits());

    DetectorSession s_orig(model), s_loaded(loaded);
    for (std::size_t i = 0; i < xs.size(); ++i)
        expectDecisionsEqual(s_orig.detect(xs[i]), s_loaded.detect(xs[i]),
                             "round-trip sample " + std::to_string(i));

    // A different architecture must be rejected by signature, with the
    // typed load error (and the bool convenience wrapper agreeing).
    nn::Network other = ptolemy::testing::makeTinyNet(4);
    DetectorModel wrong(
        other,
        path::ExtractionConfig::bwCu(
            static_cast<int>(other.weightedNodes().size()), 0.5),
        4);
    EXPECT_THROW(wrong.load(path), ModelLoadError);
    EXPECT_FALSE(wrong.tryLoad(path));

    // Truncated files must be rejected, not half-applied.
    {
        std::FILE *f = std::fopen(path.c_str(), "rb+");
        ASSERT_NE(f, nullptr);
        std::fseek(f, 0, SEEK_END);
        const long size = std::ftell(f);
        ASSERT_EQ(std::fclose(f), 0);
        ASSERT_EQ(truncate(path.c_str(), size / 2), 0);
        DetectorModel fresh(
            w.net, path::ExtractionConfig::bwCu(numWeighted(), 0.5), 10);
        EXPECT_THROW(fresh.load(path), ModelLoadError);
    }
    std::remove(path.c_str());
}

TEST(DetectorApi, FacadeDelegatesToServingApi)
{
    auto &w = ptolemy::testing::world();
    const auto &model = fittedModel();
    const auto xs = probeInputs(4);

    // The deprecated façade over the same profiling/fitting sequence
    // must decide exactly like the split API it wraps.
    Detector det(w.net, path::ExtractionConfig::bwCu(numWeighted(), 0.5),
                 10);
    det.buildClassPaths(w.dataset.train, 30);
    Rng rng(0x51AB);
    std::vector<nn::Tensor> clean, noisy;
    for (std::size_t i = 0; i < 24; ++i) {
        const auto &s = w.dataset.test[i];
        clean.push_back(s.input);
        nn::Tensor x = s.input;
        for (std::size_t e = 0; e < x.size(); ++e)
            x[e] += static_cast<float>(rng.uniform(-0.1, 0.1));
        noisy.push_back(std::move(x));
    }
    classify::FeatureMatrix benign, adversarial;
    det.featuresBatch(clean, benign);
    det.featuresBatch(noisy, adversarial);
    det.fitClassifier(benign, adversarial);

    DetectorSession sess(model);
    for (std::size_t i = 0; i < xs.size(); ++i)
        expectDecisionsEqual(det.detect(xs[i]), sess.detect(xs[i]),
                             "facade sample " + std::to_string(i));
}

} // namespace
} // namespace ptolemy::core
