/**
 * @file
 * Transient-fault extension tests (paper Sec. VIII's future-work claim).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "attack/gradient_attacks.hh"
#include "common/test_models.hh"
#include "core/evaluation.hh"
#include "core/fault_injection.hh"

namespace ptolemy::core
{
namespace
{

TEST(FaultInjection, NoFaultMatchesPlainForward)
{
    auto &w = ptolemy::testing::world();
    // A bit flip on a never-read element index beyond the logits is
    // impossible; instead flip bit 0 of the input-most node and compare
    // the unfaulted control path by flipping the same bit twice... the
    // simplest control: fault on the last node's output does not change
    // earlier outputs.
    FaultSpec f;
    f.nodeId = w.net.numNodes() - 1;
    f.element = 0;
    f.bit = 22;
    const auto &x = w.dataset.test[0].input;
    auto clean = w.net.forward(x);
    auto faulty = forwardWithFault(w.net, x, f);
    for (int id = 0; id + 1 < w.net.numNodes(); ++id)
        for (std::size_t i = 0; i < clean.outputs[id].size(); ++i)
            ASSERT_FLOAT_EQ(clean.outputs[id][i], faulty.outputs[id][i]);
    // And exactly one logit differs.
    int diffs = 0;
    for (std::size_t i = 0; i < clean.logits().size(); ++i)
        diffs += clean.logits()[i] != faulty.logits()[i];
    EXPECT_EQ(diffs, 1);
}

TEST(FaultInjection, SomeFaultsPropagateSomeAreMasked)
{
    auto &w = ptolemy::testing::world();
    const auto &x = w.dataset.test[1].input;
    auto clean = w.net.forward(x);
    int propagated = 0, masked = 0;
    // Individual SEUs can be masked (negative pre-ReLU values, losing
    // maxpool windows); across elements some must propagate and, on this
    // net, some must be masked.
    for (std::size_t e = 0; e < 24; ++e) {
        FaultSpec f{0, e, 28};
        auto faulty = forwardWithFault(w.net, x, f);
        double delta = 0.0;
        for (std::size_t i = 0; i < clean.logits().size(); ++i)
            delta += std::abs(clean.logits()[i] - faulty.logits()[i]);
        (delta > 0.0 ? propagated : masked) += 1;
    }
    EXPECT_GT(propagated, 0);
    EXPECT_GT(masked, 0);
}

TEST(FaultInjection, ValuesStayFinite)
{
    auto &w = ptolemy::testing::world();
    for (int bit = 20; bit < 32; ++bit) {
        FaultSpec f{1, 3, bit};
        auto rec = forwardWithFault(w.net, w.dataset.test[2].input, f);
        for (float v : rec.logits().vec())
            EXPECT_TRUE(std::isfinite(v)) << "bit " << bit;
    }
}

TEST(FaultInjection, CampaignDetectsMispredictingFaults)
{
    auto &w = ptolemy::testing::world();
    const int n = static_cast<int>(w.net.weightedNodes().size());
    Detector det(w.net, path::ExtractionConfig::bwCu(n, 0.5), 10);
    det.buildClassPaths(w.dataset.train, 60);
    // Fit the classifier on adversarial pairs — the campaign then reuses
    // the same detector for hardware faults, as the paper suggests.
    attack::Fgsm fgsm;
    auto pairs = buildAttackPairs(w.net, fgsm, w.dataset.test, 40);
    fitAndScore(det, pairs, 0.5);

    const auto res = runFaultCampaign(det, w.dataset.test, 400);
    EXPECT_EQ(res.injections, 400u);
    EXPECT_GE(res.mispredictions, 5u);
    // A mispredicting fault perturbs the activation path like an
    // adversarial input; a solid majority must be rejected.
    EXPECT_GT(res.detectionRate(), 0.5);
    // Masked (benign-outcome) faults should rarely raise alarms.
    EXPECT_LT(static_cast<double>(res.falseAlarms),
              0.15 * (res.injections - res.mispredictions) + 1);
}

} // namespace
} // namespace ptolemy::core
