/**
 * @file
 * Cycle-level simulator tests: instruction timing models, loop execution,
 * functional-unit overlap, and hardware-provisioning sensitivity
 * (the mechanisms behind the paper's Figs. 7 and 18).
 */

#include <gtest/gtest.h>

#include "hw/simulator.hh"

namespace ptolemy::hw
{
namespace
{

using isa::InstrMeta;
using isa::Program;

TEST(UnitMapping, MatchesArchitectureBlocks)
{
    EXPECT_EQ(Simulator::unitFor(isa::Opcode::Inf), FuncUnit::Accel);
    EXPECT_EQ(Simulator::unitFor(isa::Opcode::Csps), FuncUnit::Accel);
    EXPECT_EQ(Simulator::unitFor(isa::Opcode::Sort), FuncUnit::Sort);
    EXPECT_EQ(Simulator::unitFor(isa::Opcode::Acum), FuncUnit::Accum);
    EXPECT_EQ(Simulator::unitFor(isa::Opcode::GenMasks), FuncUnit::Mask);
    EXPECT_EQ(Simulator::unitFor(isa::Opcode::Mov), FuncUnit::Mcu);
}

TEST(Durations, InfScalesWithMacs)
{
    Simulator sim;
    InstrMeta small, big;
    small.macs = 4000;
    big.macs = 400000;
    const auto ins = isa::makeInf(0, 2, 1);
    EXPECT_LT(sim.durationOf(ins, small, 0), sim.durationOf(ins, big, 0));
    // 400 MACs/cycle at 20x20: 400000 MACs ~ 1000 cycles + fill.
    EXPECT_NEAR(static_cast<double>(sim.durationOf(ins, big, 0)), 1040.0,
                1.0);
}

TEST(Durations, InfSpPaysPsumStorePenalty)
{
    Simulator sim;
    InstrMeta m;
    m.macs = 400000;
    m.psumBytes = 400000 * 4;
    const auto inf = sim.durationOf(isa::makeInf(0, 2, 1), m, 0);
    const auto infsp = sim.durationOf(isa::makeInfSp(0, 2, 1, 12), m, 0);
    EXPECT_GT(infsp, inf);
}

TEST(Durations, CspsUsesOneRowOnly)
{
    Simulator sim;
    InstrMeta m;
    m.macs = 2000;
    const auto inf_cycles = sim.durationOf(isa::makeInf(0, 2, 1), m, 0);
    const auto csps_cycles =
        sim.durationOf(isa::makeCsps(4, 5, 12), m, 0);
    // Recompute on 20 PEs is slower per MAC than the full 400-PE array,
    // but the workload (one receptive field) is small.
    EXPECT_GT(csps_cycles, inf_cycles / 20);
}

TEST(Durations, SortLatencyDropsWithLargerMergeTree)
{
    HwConfig narrow = HwConfig::baseline();
    narrow.mergeTreeLen = 4;
    HwConfig wide = HwConfig::baseline();
    wide.mergeTreeLen = 32;
    InstrMeta m;
    m.seqLen = 20000;
    const auto ins = isa::makeSort(1, 3, 6);
    EXPECT_GT(Simulator(narrow).durationOf(ins, m, 20000),
              Simulator(wide).durationOf(ins, m, 20000));
}

TEST(Durations, SortLatencyBarelyChangesWithMoreSortUnits)
{
    // Paper Fig. 18b: latency decreases only marginally with more sort
    // units because merging dominates.
    HwConfig few = HwConfig::baseline();
    few.numSortUnits = 2;
    HwConfig many = HwConfig::baseline();
    many.numSortUnits = 16;
    InstrMeta m;
    m.seqLen = 20000;
    const auto ins = isa::makeSort(1, 3, 6);
    const auto t_few = Simulator(few).durationOf(ins, m, 20000);
    const auto t_many = Simulator(many).durationOf(ins, m, 20000);
    EXPECT_GE(t_few, t_many);
    EXPECT_LT(static_cast<double>(t_few - t_many) / t_few, 0.30);
}

TEST(Durations, SortReadsLengthFromRegister)
{
    Simulator sim;
    Program p;
    p.append(isa::makeMov(3, 1024));
    InstrMeta sort_m;
    sort_m.seqLen = 16; // stale metadata; the register must win
    p.append(isa::makeSort(1, 3, 6), sort_m);
    p.append(isa::makeHalt());
    const auto rep = sim.run(p);

    Program q;
    q.append(isa::makeMov(3, 16));
    q.append(isa::makeSort(1, 3, 6), sort_m);
    q.append(isa::makeHalt());
    EXPECT_GT(rep.cycles, sim.run(q).cycles);
}

TEST(Execution, LoopRunsExactTripCount)
{
    Simulator sim;
    Program p;
    p.append(isa::makeMov(3, 10));
    const std::uint16_t loop = static_cast<std::uint16_t>(p.size());
    p.append(isa::makeDec(3));
    p.append(isa::makeJne(3, loop));
    p.append(isa::makeHalt());
    const auto rep = sim.run(p);
    // mov + 10 * (dec + jne) = 21 executed instructions.
    EXPECT_EQ(rep.instructionsExecuted, 21u);
}

TEST(Execution, HaltStopsImmediately)
{
    Simulator sim;
    Program p;
    p.append(isa::makeHalt());
    p.append(isa::makeMov(1, 5));
    const auto rep = sim.run(p);
    EXPECT_EQ(rep.instructionsExecuted, 0u);
}

TEST(Execution, IndependentUnitsOverlap)
{
    // A sort (Sort unit) followed by an *independent* genmasks
    // (Mask unit) overlap; a dependent acum does not.
    Simulator sim;
    InstrMeta sort_m;
    sort_m.seqLen = 50000;
    InstrMeta gm;
    gm.bits = 1 << 20;

    Program indep;
    indep.append(isa::makeMov(3, 0));
    indep.append(isa::makeSort(1, 3, 6), sort_m);
    indep.append(isa::makeGenMasks(2, 14), gm); // reads r2, not r6
    indep.append(isa::makeHalt());

    Program dep;
    dep.append(isa::makeMov(3, 0));
    dep.append(isa::makeSort(1, 3, 6), sort_m);
    dep.append(isa::makeGenMasks(6, 14), gm); // reads the sort output
    dep.append(isa::makeHalt());

    const auto r_indep = sim.run(indep);
    const auto r_dep = sim.run(dep);
    EXPECT_LT(r_indep.cycles, r_dep.cycles);
    // The dependent version is roughly the serial sum.
    const auto sort_cycles =
        sim.durationOf(isa::makeSort(1, 3, 6), sort_m, 0);
    const auto gm_cycles =
        sim.durationOf(isa::makeGenMasks(6, 14), gm, 0);
    EXPECT_GE(r_dep.cycles, sort_cycles + gm_cycles);
}

TEST(Execution, EnergyAccountedPerUnit)
{
    Simulator sim;
    InstrMeta inf_m;
    inf_m.macs = 100000;
    inf_m.ifmBytes = 2048;
    inf_m.wBytes = 4096;
    inf_m.ofmBytes = 2048;
    Program p;
    p.append(isa::makeInf(0, 2, 1), inf_m);
    p.append(isa::makeHalt());
    const auto rep = sim.run(p);
    EXPECT_GT(rep.energyPj, 0.0);
    EXPECT_GT(rep.unitEnergyPj[static_cast<int>(FuncUnit::Accel)], 0.0);
    EXPECT_EQ(rep.dramBytes, 2048u + 4096 + 2048);
    EXPECT_GT(rep.latencyUs(250.0), 0.0);
    EXPECT_GT(rep.avgPowerMw(250.0), 0.0);
}

TEST(Execution, RunawayLoopIsBounded)
{
    Simulator sim;
    Program p;
    p.append(isa::makeMov(3, 1));
    const std::uint16_t loop = static_cast<std::uint16_t>(p.size());
    p.append(isa::makeJne(3, loop)); // r3 never changes: infinite loop
    const auto rep = sim.run(p);
    EXPECT_GT(rep.instructionsExecuted, 0u); // terminated by the guard
}

} // namespace
} // namespace ptolemy::hw
