/**
 * @file
 * Persistent packed-weight serving path: bitwise identity of
 * sgemmPrepacked vs sgemm, the fused packed conv forward vs the
 * classic im2col path, im2colRowsInto vs full im2col, inline-vs-pooled
 * scheduling, and the 64-byte panel alignment the AVX2 kernels assume.
 * Everything here asserts EXACT float equality — the packed path's
 * contract is bit-identity, not tolerance.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "nn/conv.hh"
#include "nn/gemm.hh"
#include "nn/gemm_kernels.hh"
#include "nn/linear.hh"
#include "util/aligned.hh"
#include "util/rng.hh"
#include "util/thread_pool.hh"

namespace ptolemy::nn
{
namespace
{

void
fillRandom(std::vector<float> &v, Rng &rng, float scale = 1.0f)
{
    for (auto &x : v)
        x = (static_cast<float>(rng.uniform()) - 0.5f) * scale;
}

Tensor
randomTensor(Shape s, Rng &rng, float scale = 1.0f)
{
    Tensor t(s);
    for (std::size_t i = 0; i < t.size(); ++i)
        t[i] = (static_cast<float>(rng.uniform()) - 0.5f) * scale;
    return t;
}

/** RAII guard restoring the process-wide SIMD mode. */
struct SimdModeGuard
{
    SimdMode saved = simdMode();
    ~SimdModeGuard() { simdMode() = saved; }
};

/** RAII guard restoring the gemm pool pointer. */
struct GemmPoolGuard
{
    ThreadPool *saved = gemmPool();
    ~GemmPoolGuard() { gemmPool() = saved; }
};

/** RAII guard restoring the packed-serving-path switch. */
struct PrepackGuard
{
    bool saved = prepackEnabled();
    ~PrepackGuard() { prepackEnabled() = saved; }
};

/** RAII guard restoring the inline-vs-pool task cutoff. */
struct InlineCutoffGuard
{
    int saved = gemmInlineTaskCutoff();
    ~InlineCutoffGuard() { gemmInlineTaskCutoff() = saved; }
};

std::vector<SimdMode>
modesToTest()
{
    std::vector<SimdMode> modes = {SimdMode::Scalar};
    if (avx2Available())
        modes.push_back(SimdMode::Avx2);
    return modes;
}

TEST(Prepack, SgemmPrepackedBitIdenticalToOnTheFly)
{
    // K values cover every remainder of the kernels' K x 4 unroll and
    // the scalar path's 128-deep k-blocking; N values cover 16-wide
    // panels, the 8-wide panel, the scalar tail, and combinations.
    SimdModeGuard mode_guard;
    GemmPoolGuard pool_guard;
    gemmPool() = nullptr;
    Rng rng(41);

    const int ms[] = {1, 5, 6, 7, 33};
    const int ns[] = {1, 5, 8, 15, 16, 23, 37, 40, 129};
    const int ks[] = {1, 2, 3, 4, 7, 9, 64, 130};
    for (SimdMode mode : modesToTest()) {
        simdMode() = mode;
        for (int M : ms) {
            for (int N : ns) {
                for (int K : ks) {
                    std::vector<float> A(static_cast<std::size_t>(M) * K);
                    std::vector<float> B(static_cast<std::size_t>(K) * N);
                    fillRandom(A, rng);
                    fillRandom(B, rng);

                    PackedB packed;
                    packBMatrix(B.data(), N, K, N, packed);
                    ASSERT_EQ(packed.K, K);
                    ASSERT_EQ(packed.N, N);

                    const std::size_t cn = static_cast<std::size_t>(M) * N;
                    // Sweep both accumulate modes on every shape.
                    for (bool acc : {false, true}) {
                        std::vector<float> ref(cn, 0.25f), got(cn, 0.25f);
                        sgemm(M, N, K, A.data(), B.data(), ref.data(), acc);
                        sgemmPrepacked(M, A.data(), packed, got.data(), acc);
                        ASSERT_EQ(0, std::memcmp(ref.data(), got.data(),
                                                 cn * sizeof(float)))
                            << "mode=" << simdModeName() << " M=" << M
                            << " N=" << N << " K=" << K << " acc=" << acc;
                    }
                }
            }
        }
    }
}

TEST(Prepack, StridedPackMatchesMaterializedTranspose)
{
    // packBMatrixStrided with (k_stride, n_stride) = (1, K) packs a
    // conv weight matrix [N x K] as W^T without materializing the
    // transpose; the panel bytes must equal packBMatrix on the
    // explicitly transposed matrix.
    Rng rng(42);
    const int shapes[][2] = {{1, 1},  {3, 5},   {27, 16}, {27, 37},
                             {64, 8}, {130, 23}, {576, 40}};
    for (const auto &s : shapes) {
        const int K = s[0], N = s[1];
        std::vector<float> W(static_cast<std::size_t>(N) * K); // [N x K]
        fillRandom(W, rng);
        std::vector<float> Wt(static_cast<std::size_t>(K) * N);
        for (int k = 0; k < K; ++k)
            for (int n = 0; n < N; ++n)
                Wt[static_cast<std::size_t>(k) * N + n] =
                    W[static_cast<std::size_t>(n) * K + k];

        PackedB viaStride, viaCopy;
        packBMatrixStrided(W.data(), 1, K, K, N, viaStride);
        packBMatrix(Wt.data(), N, K, N, viaCopy);
        ASSERT_EQ(viaStride.data.size(), viaCopy.data.size());
        ASSERT_EQ(0, std::memcmp(viaStride.data.data(), viaCopy.data.data(),
                                 viaCopy.data.size() * sizeof(float)))
            << "K=" << K << " N=" << N;
    }
}

TEST(Prepack, PackedPanelsAreCacheLineAligned)
{
    // The AVX2 kernels use aligned loads on every 16-wide panel row;
    // the buffer base and each panel start must sit on 64 bytes.
    const int shapes[][2] = {{27, 64}, {576, 40}, {9, 23}, {130, 129}};
    for (const auto &s : shapes) {
        const int K = s[0], N = s[1];
        std::vector<float> B(static_cast<std::size_t>(K) * N, 1.0f);
        PackedB packed;
        packBMatrix(B.data(), N, K, N, packed);

        const auto L = detail::packedBLayout(K, N);
        ASSERT_EQ(packed.data.size(), L.total);
        ASSERT_TRUE(util::isAligned(packed.data.data())) << K << "x" << N;
        for (int blk = 0; blk < L.nFull; ++blk)
            ASSERT_TRUE(util::isAligned(
                packed.data.data() +
                static_cast<std::size_t>(blk) * K * 16));
        if (L.has8)
            ASSERT_TRUE(util::isAligned(packed.data.data() + L.off8));
    }
}

TEST(Prepack, Im2colRowsMatchesFullIm2col)
{
    // Row-range emission must reproduce the corresponding slice of the
    // full im2col matrix byte-for-byte, including the zero-padded
    // border taps, for every conv geometry the fused path sees.
    Rng rng(43);
    const int cases[][5] = {{3, 1, 1, 8, 8},  {3, 2, 1, 9, 9},
                            {1, 1, 0, 6, 6},  {5, 1, 2, 11, 9},
                            {5, 2, 2, 12, 12}, {3, 1, 0, 7, 11}};
    for (const auto &cs : cases) {
        const int k = cs[0], stride = cs[1], pad = cs[2];
        const int h = cs[3], w = cs[4];
        const int in_c = 3;
        const int oh = (h + 2 * pad - k) / stride + 1;
        const int ow = (w + 2 * pad - k) / stride + 1;
        const int K = in_c * k * k;
        std::vector<float> in(static_cast<std::size_t>(in_c) * h * w);
        fillRandom(in, rng);

        util::AlignedF32 full;
        im2col(in.data(), in_c, h, w, k, stride, pad, oh, ow, full);

        for (int oy0 = 0; oy0 < oh; ++oy0) {
            for (int oy1 = oy0 + 1; oy1 <= oh; ++oy1) {
                const std::size_t P =
                    static_cast<std::size_t>(oy1 - oy0) * ow;
                std::vector<float> slice(static_cast<std::size_t>(K) * P,
                                         -9.0f);
                im2colRowsInto(in.data(), in_c, h, w, k, stride, pad, ow,
                               oy0, oy1, slice.data(), P);
                for (int kk = 0; kk < K; ++kk)
                    ASSERT_EQ(0,
                              std::memcmp(
                                  slice.data() + static_cast<std::size_t>(
                                                     kk) * P,
                                  full.data() +
                                      static_cast<std::size_t>(kk) * oh *
                                          ow +
                                      static_cast<std::size_t>(oy0) * ow,
                                  P * sizeof(float)))
                        << "k=" << k << " s=" << stride << " p=" << pad
                        << " rows [" << oy0 << "," << oy1 << ") tap row "
                        << kk;
            }
        }
    }
}

TEST(Prepack, FusedConvForwardBitIdenticalToClassicPath)
{
    // The end-to-end contract: a Conv2d forward with the persistent
    // packed panel engaged produces the exact bytes of the classic
    // im2col + sgemm + bias path. Geometries cover stride 2, 1x1
    // kernels, zero padding, and channel counts hitting the 16-wide,
    // 8-wide, and scalar-tail weight panels.
    if (!avx2Available())
        GTEST_SKIP() << "fused packed forward is AVX2-only";
    SimdModeGuard mode_guard;
    GemmPoolGuard pool_guard;
    PrepackGuard prepack_guard;
    gemmPool() = nullptr;
    simdMode() = SimdMode::Avx2;
    Rng rng(44);

    // {in_c, out_c, k, stride, pad, h, w}
    const int cases[][7] = {
        {3, 16, 3, 1, 1, 8, 8},   {3, 8, 3, 1, 1, 8, 8},
        {3, 23, 3, 1, 1, 9, 7},   {16, 32, 3, 1, 0, 10, 10},
        {4, 40, 3, 2, 1, 9, 9},   {8, 5, 1, 1, 0, 6, 6},
        {2, 17, 5, 2, 2, 12, 12}, {3, 16, 5, 1, 2, 4, 1},
        {3, 64, 3, 1, 1, 32, 32}};
    for (const auto &cs : cases) {
        Conv2d conv("c", cs[0], cs[1], cs[2], cs[3], cs[4]);
        fillRandom(conv.weights(), rng);
        fillRandom(conv.biases(), rng);
        conv.prepackWeights();
        const Tensor x = randomTensor(mapShape(cs[0], cs[5], cs[6]), rng);

        Tensor packed_out, classic_out;
        prepackEnabled() = true;
        conv.forwardInto({&x}, packed_out, false);
        prepackEnabled() = false;
        conv.forwardInto({&x}, classic_out, false);

        ASSERT_EQ(packed_out.shape(), classic_out.shape());
        ASSERT_EQ(0, std::memcmp(packed_out.data(), classic_out.data(),
                                 packed_out.size() * sizeof(float)))
            << "in_c=" << cs[0] << " out_c=" << cs[1] << " k=" << cs[2]
            << " s=" << cs[3] << " p=" << cs[4] << " h=" << cs[5]
            << " w=" << cs[6];
    }
}

TEST(Prepack, FusedConvBatchForwardBitIdenticalPerSample)
{
    // The batched entry point routes through the fused per-sample path
    // when packing is engaged; every sample must equal its standalone
    // forward exactly.
    if (!avx2Available())
        GTEST_SKIP() << "fused packed forward is AVX2-only";
    SimdModeGuard mode_guard;
    GemmPoolGuard pool_guard;
    PrepackGuard prepack_guard;
    gemmPool() = nullptr;
    simdMode() = SimdMode::Avx2;
    prepackEnabled() = true;
    Rng rng(45);

    Conv2d conv("c", 3, 16, 3, 1, 1);
    fillRandom(conv.weights(), rng);
    fillRandom(conv.biases(), rng);
    conv.prepackWeights();

    constexpr int S = 5;
    std::vector<Tensor> xs;
    for (int s = 0; s < S; ++s)
        xs.push_back(randomTensor(mapShape(3, 8, 8), rng));
    std::vector<const Tensor *> ins;
    std::vector<Tensor> outs(S);
    std::vector<Tensor *> out_ptrs;
    for (int s = 0; s < S; ++s) {
        ins.push_back(&xs[s]);
        conv.forwardInto({&xs[s]}, outs[s], false); // pre-size
        out_ptrs.push_back(&outs[s]);
    }
    std::vector<Tensor> refs(S);
    for (int s = 0; s < S; ++s)
        conv.forwardInto({&xs[s]}, refs[s], false);

    conv.forwardBatchInto(std::span<const Tensor *const>(ins),
                          std::span<Tensor *const>(out_ptrs));
    for (int s = 0; s < S; ++s)
        ASSERT_EQ(0, std::memcmp(outs[s].data(), refs[s].data(),
                                 refs[s].size() * sizeof(float)))
            << "sample " << s;
}

TEST(Prepack, InlineAndPooledSchedulingBitIdentical)
{
    // The inline-below-cutoff dispatch is scheduling only: forcing the
    // cutoff to extremes (always inline / always pool-eligible) across
    // pool sizes {1, 2, 8} must not move a single bit, for both the
    // prepacked GEMM and the fused conv forward.
    SimdModeGuard mode_guard;
    GemmPoolGuard pool_guard;
    PrepackGuard prepack_guard;
    InlineCutoffGuard cutoff_guard;
    Rng rng(46);

    // Big enough that the FLOP cutoff passes and several row tasks
    // exist, so both dispatch arms genuinely execute.
    const int M = 48, N = 600, K = 128;
    std::vector<float> A(static_cast<std::size_t>(M) * K);
    std::vector<float> B(static_cast<std::size_t>(K) * N);
    fillRandom(A, rng);
    fillRandom(B, rng);
    PackedB packed;
    packBMatrix(B.data(), N, K, N, packed);

    Conv2d conv("c", 8, 32, 3, 1, 1);
    fillRandom(conv.weights(), rng);
    fillRandom(conv.biases(), rng);
    conv.prepackWeights();
    prepackEnabled() = true;
    const Tensor x = randomTensor(mapShape(8, 24, 24), rng);

    for (SimdMode mode : modesToTest()) {
        simdMode() = mode;
        gemmPool() = nullptr;
        gemmInlineTaskCutoff() = 1 << 20; // force inline everywhere
        std::vector<float> ref(static_cast<std::size_t>(M) * N, 0.0f);
        sgemmPrepacked(M, A.data(), packed, ref.data());
        Tensor conv_ref;
        conv.forwardInto({&x}, conv_ref, false);

        for (unsigned threads : {1u, 2u, 8u}) {
            ThreadPool pool(threads);
            gemmPool() = &pool;
            gemmInlineTaskCutoff() = 0; // pool-eligible at any task count
            std::vector<float> got(ref.size(), -1.0f);
            sgemmPrepacked(M, A.data(), packed, got.data());
            ASSERT_EQ(0, std::memcmp(ref.data(), got.data(),
                                     ref.size() * sizeof(float)))
                << "sgemmPrepacked mode=" << simdModeName()
                << " threads=" << threads;

            Tensor conv_got;
            conv.forwardInto({&x}, conv_got, false);
            ASSERT_EQ(0, std::memcmp(conv_ref.data(), conv_got.data(),
                                     conv_ref.size() * sizeof(float)))
                << "conv mode=" << simdModeName()
                << " threads=" << threads;
            gemmPool() = nullptr;
        }
    }
}

TEST(Prepack, LinearPackedWeightsBitIdentical)
{
    // Linear packing is a 64-byte-aligned value copy; the gemv numerics
    // must be frozen — exact equality with the unpacked weights, both
    // SIMD modes, odd K remainders.
    SimdModeGuard mode_guard;
    PrepackGuard prepack_guard;
    Rng rng(47);

    for (SimdMode mode : modesToTest()) {
        simdMode() = mode;
        for (int K : {7, 64, 129}) {
            Linear fc("fc", K, 33);
            fillRandom(fc.weights(), rng);
            fillRandom(fc.biases(), rng);
            fc.prepackWeights();
            const Tensor x = randomTensor(flatShape(K), rng);

            Tensor packed_out, classic_out;
            prepackEnabled() = true;
            fc.forwardInto({&x}, packed_out, false);
            prepackEnabled() = false;
            fc.forwardInto({&x}, classic_out, false);
            ASSERT_EQ(0, std::memcmp(packed_out.data(), classic_out.data(),
                                     classic_out.size() * sizeof(float)))
                << "mode=" << simdModeName() << " K=" << K;
        }
    }
}

TEST(Prepack, WeightMutationInvalidatesPackedPanel)
{
    // weights() hands out mutable storage, so the packed panel must be
    // dropped and the next prepack must pick up the new values — a
    // stale panel would silently serve the old model.
    if (!avx2Available())
        GTEST_SKIP() << "fused packed forward is AVX2-only";
    SimdModeGuard mode_guard;
    GemmPoolGuard pool_guard;
    PrepackGuard prepack_guard;
    gemmPool() = nullptr;
    simdMode() = SimdMode::Avx2;
    prepackEnabled() = true;
    Rng rng(48);

    Conv2d conv("c", 3, 16, 3, 1, 1);
    fillRandom(conv.weights(), rng);
    fillRandom(conv.biases(), rng);
    conv.prepackWeights();
    const Tensor x = randomTensor(mapShape(3, 8, 8), rng);
    Tensor before;
    conv.forwardInto({&x}, before, false);

    // Mutate weights; re-pack; the packed forward must track the new
    // values and stay bit-identical to the classic path on them.
    for (auto &w : conv.weights())
        w += 0.125f;
    conv.prepackWeights();
    Tensor after_packed, after_classic;
    conv.forwardInto({&x}, after_packed, false);
    prepackEnabled() = false;
    conv.forwardInto({&x}, after_classic, false);

    ASSERT_EQ(0, std::memcmp(after_packed.data(), after_classic.data(),
                             after_classic.size() * sizeof(float)));
    // And the outputs genuinely changed (the panel wasn't stale).
    bool changed = false;
    for (std::size_t i = 0; i < before.size() && !changed; ++i)
        changed = before[i] != after_packed[i];
    ASSERT_TRUE(changed);
}

} // namespace
} // namespace ptolemy::nn
