/**
 * @file
 * Heap-allocation counter behind the test binary's global operator new
 * replacement. The replacement itself is defined ONCE, in
 * test_detector_api.cc (operator new can only be replaced once per
 * program); every test file that asserts a zero-allocation steady
 * state reads this shared counter.
 */

#ifndef PTOLEMY_TESTS_COMMON_ALLOC_PROBE_HH
#define PTOLEMY_TESTS_COMMON_ALLOC_PROBE_HH

#include <atomic>
#include <cstddef>

extern std::atomic<std::size_t> g_test_allocs;

#endif // PTOLEMY_TESTS_COMMON_ALLOC_PROBE_HH
