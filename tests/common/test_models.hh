/**
 * @file
 * Shared test fixtures: a small trained CNN and dataset, built once per
 * test process. Integration tests (extraction, detector, attacks,
 * baselines) all need a model whose predictions are meaningful; training
 * happens lazily on first use and is reused by every suite.
 */

#ifndef PTOLEMY_TESTS_COMMON_TEST_MODELS_HH
#define PTOLEMY_TESTS_COMMON_TEST_MODELS_HH

#include <memory>

#include "data/synthetic.hh"
#include "nn/common_layers.hh"
#include "nn/conv.hh"
#include "nn/init.hh"
#include "nn/linear.hh"
#include "nn/network.hh"
#include "nn/trainer.hh"

namespace ptolemy::testing
{

/** A small 4-weighted-layer CNN for 3x16x16 inputs. */
inline nn::Network
makeTinyNet(int num_classes)
{
    nn::Network net("TinyNet", nn::mapShape(3, 16, 16));
    net.add(std::make_unique<nn::Conv2d>("conv1", 3, 8, 3, 1, 1));
    net.add(std::make_unique<nn::ReLU>("relu1"));
    net.add(std::make_unique<nn::MaxPool2d>("pool1", 2)); // 8x8
    net.add(std::make_unique<nn::Conv2d>("conv2", 8, 12, 3, 1, 1));
    net.add(std::make_unique<nn::ReLU>("relu2"));
    net.add(std::make_unique<nn::MaxPool2d>("pool2", 2)); // 4x4
    net.add(std::make_unique<nn::Flatten>("flat"));
    net.add(std::make_unique<nn::Linear>("fc1", 12 * 4 * 4, 48));
    net.add(std::make_unique<nn::ReLU>("relu3"));
    net.add(std::make_unique<nn::Linear>("fc2", 48, num_classes));
    return net;
}

/** Trained model + data shared by integration tests. */
struct TrainedWorld
{
    data::SplitDataset dataset;
    nn::Network net;
    double testAccuracy = 0.0;

    TrainedWorld() : net(makeTinyNet(10))
    {
        // Sized so the statistical suites (baselines, detector AUC)
        // test real discrimination rather than chance-level noise: the
        // seed's 60/15-per-class split left DeepFense at AUC ~0.5 with
        // assertions that only held by luck. The longer, lower-LR
        // schedule converges to the same fully-trained model under the
        // AVX2, scalar and naive-conv kernel numerics (the old 4x0.05
        // recipe diverged outright in some regimes), and the parallel +
        // SIMD compute core keeps the bigger world's one-time training
        // cost in the old fixture's ballpark.
        data::DatasetSpec spec;
        spec.numClasses = 10;
        spec.trainPerClass = 110;
        spec.testPerClass = 30;
        spec.seed = 42;
        dataset = data::makeSyntheticDataset(spec);
        nn::heInit(net, 7);
        nn::TrainConfig tc;
        tc.epochs = 8;
        tc.learningRate = 0.02;
        nn::Trainer trainer(tc);
        trainer.train(net, dataset.train);
        testAccuracy = nn::Trainer::evaluate(net, dataset.test);
    }
};

/** Lazily-constructed singleton world. */
inline TrainedWorld &
world()
{
    static TrainedWorld w;
    return w;
}

} // namespace ptolemy::testing

#endif // PTOLEMY_TESTS_COMMON_TEST_MODELS_HH
