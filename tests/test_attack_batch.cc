/**
 * @file
 * Batched attack engine tests: for every attack in the suite (plus PGD
 * and the adaptive attack), runBatch over a candidate batch must be
 * bit-identical to one-at-a-time run() calls with matching sample
 * indices — for any chunking of the stream and any thread count — and
 * the distortion metrics must behave on edge cases (identical tensors,
 * single elements, the L0 tolerance boundary).
 */

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "attack/adaptive.hh"
#include "attack/cw.hh"
#include "attack/deepfool.hh"
#include "attack/gradient_attacks.hh"
#include "attack/jsma.hh"
#include "attack/suite.hh"
#include "common/test_models.hh"
#include "util/thread_pool.hh"

namespace ptolemy::attack
{
namespace
{

/** First @p n test samples (no correctness filter: the engine contract
 *  covers fooled inputs too). */
void
batchOf(int n, std::vector<const nn::Tensor *> &xs,
        std::vector<std::size_t> &labels)
{
    auto &w = ptolemy::testing::world();
    xs.clear();
    labels.clear();
    for (int i = 0; i < n; ++i) {
        xs.push_back(&w.dataset.test[i].input);
        labels.push_back(w.dataset.test[i].label);
    }
}

void
expectBitIdentical(const AttackResult &a, const AttackResult &b,
                   const std::string &what)
{
    EXPECT_EQ(a.success, b.success) << what;
    EXPECT_EQ(a.iterations, b.iterations) << what;
    EXPECT_EQ(a.mse, b.mse) << what; // exact: same float ops either way
    ASSERT_EQ(a.adversarial.size(), b.adversarial.size()) << what;
    EXPECT_EQ(std::memcmp(a.adversarial.data(), b.adversarial.data(),
                          a.adversarial.size() * sizeof(float)),
              0)
        << what;
}

/** Attacks under test: the paper's five plus the randomized pair. */
std::vector<std::unique_ptr<Attack>>
attacksUnderTest()
{
    auto &w = ptolemy::testing::world();
    auto v = makeStandardAttacks();
    v.push_back(std::make_unique<Pgd>());
    v.push_back(std::make_unique<AdaptiveActivationAttack>(
        2, &w.dataset.train, /*num_targets=*/2, /*iters=*/10));
    return v;
}

TEST(BatchEngine, BatchedMatchesSerialRunBitExactly)
{
    auto &w = ptolemy::testing::world();
    constexpr int kN = 6;
    std::vector<const nn::Tensor *> xs;
    std::vector<std::size_t> labels;
    batchOf(kN, xs, labels);

    for (auto &atk : attacksUnderTest()) {
        std::vector<AttackResult> serial(kN);
        for (int i = 0; i < kN; ++i)
            serial[i] = atk->run(w.net, *xs[i], labels[i],
                                 /*sample_index=*/i);
        std::vector<AttackResult> batched(kN);
        atk->runBatch(w.net, xs, labels, batched, /*index_base=*/0);
        for (int i = 0; i < kN; ++i)
            expectBitIdentical(serial[i], batched[i],
                               atk->name() + " sample " +
                                   std::to_string(i));
    }
}

TEST(BatchEngine, ChunkCompositionIsIrrelevant)
{
    // One 6-sample batch vs chunks of 4 + 2 with matching index bases:
    // the randomized attacks key noise by global sample index, so the
    // chunking must not matter.
    auto &w = ptolemy::testing::world();
    constexpr int kN = 6;
    std::vector<const nn::Tensor *> xs;
    std::vector<std::size_t> labels;
    batchOf(kN, xs, labels);

    for (auto &atk : attacksUnderTest()) {
        std::vector<AttackResult> whole(kN);
        atk->runBatch(w.net, xs, labels, whole, /*index_base=*/0);

        std::vector<AttackResult> chunked(kN);
        atk->runBatch(w.net, {xs.data(), 4}, {labels.data(), 4},
                      {chunked.data(), 4}, /*index_base=*/0);
        atk->runBatch(w.net, {xs.data() + 4, 2}, {labels.data() + 4, 2},
                      {chunked.data() + 4, 2}, /*index_base=*/4);
        for (int i = 0; i < kN; ++i)
            expectBitIdentical(whole[i], chunked[i],
                               atk->name() + " chunked sample " +
                                   std::to_string(i));
    }
}

TEST(BatchEngine, ThreadCountDoesNotChangeResults)
{
    // PTOLEMY_NUM_THREADS ∈ {1, 2, 8} equivalent: explicit local pools
    // pinned onto each attack. The 1-thread run is the reference.
    auto &w = ptolemy::testing::world();
    constexpr int kN = 6;
    std::vector<const nn::Tensor *> xs;
    std::vector<std::size_t> labels;
    batchOf(kN, xs, labels);

    for (auto &atk : attacksUnderTest()) {
        ThreadPool serial(1);
        atk->setPool(&serial);
        std::vector<AttackResult> ref(kN);
        atk->runBatch(w.net, xs, labels, ref, /*index_base=*/0);

        for (unsigned threads : {2u, 8u}) {
            ThreadPool pool(threads);
            atk->setPool(&pool);
            std::vector<AttackResult> got(kN);
            atk->runBatch(w.net, xs, labels, got, /*index_base=*/0);
            for (int i = 0; i < kN; ++i)
                expectBitIdentical(ref[i], got[i],
                                   atk->name() + " threads=" +
                                       std::to_string(threads) +
                                       " sample " + std::to_string(i));
        }
        atk->setPool(nullptr);
    }
}

TEST(BatchEngine, PgdStartNoiseIsKeyedBySampleIndex)
{
    // Same input at two different sample indices must draw different
    // start noise; the same index must reproduce it exactly.
    auto &w = ptolemy::testing::world();
    const auto &s = w.dataset.test[0];
    Pgd pgd;
    const auto a0 = pgd.run(w.net, s.input, s.label, /*sample_index=*/0);
    const auto a0_again =
        pgd.run(w.net, s.input, s.label, /*sample_index=*/0);
    const auto a1 = pgd.run(w.net, s.input, s.label, /*sample_index=*/1);
    expectBitIdentical(a0, a0_again, "PGD replay at index 0");
    EXPECT_NE(std::memcmp(a0.adversarial.data(), a1.adversarial.data(),
                          a0.adversarial.size() * sizeof(float)),
              0)
        << "distinct sample indices should draw distinct start noise";
}

TEST(BatchEngine, InputOnlyBackwardMatchesFullBackwardInput)
{
    // The engine's fast path skips all dW/db arithmetic; the input
    // gradient must stay bit-identical and the layers' parameter
    // gradient buffers must stay untouched.
    auto &w = ptolemy::testing::world();
    const auto &s = w.dataset.test[0];
    auto rec = w.net.forward(s.input);
    nn::LossGrad lg;
    nn::softmaxCrossEntropyInto(rec.logits(), s.label, lg);

    w.net.zeroGrads();
    nn::Tensor full = w.net.backward(rec, lg.grad); // fills param grads

    std::vector<std::vector<float>> param_grads_after_full;
    for (auto p : w.net.flatParams())
        param_grads_after_full.push_back(*p.grad);

    w.net.zeroGrads();
    nn::Network::GradArena slot;
    const nn::Tensor &in_only =
        w.net.backwardInputOnly(rec, lg.grad, slot);

    ASSERT_EQ(full.size(), in_only.size());
    EXPECT_EQ(std::memcmp(full.data(), in_only.data(),
                          full.size() * sizeof(float)),
              0);
    // Full backward produced nonzero param grads; input-only left the
    // zeroed buffers alone.
    double full_sum = 0.0, after_sum = 0.0;
    std::size_t pi = 0;
    for (auto p : w.net.flatParams()) {
        for (float g : param_grads_after_full[pi++])
            full_sum += std::abs(g);
        for (float g : *p.grad)
            after_sum += std::abs(g);
    }
    EXPECT_GT(full_sum, 0.0);
    EXPECT_EQ(after_sum, 0.0);
    w.net.zeroGrads();
}

TEST(BatchEngine, EmptyBatchIsANoOp)
{
    auto &w = ptolemy::testing::world();
    for (auto &atk : attacksUnderTest())
        atk->runBatch(w.net, {}, {}, {}, 0); // must not crash
}

TEST(Metrics, IdenticalTensorsScoreZero)
{
    nn::Tensor a(nn::flatShape(5), {0.1f, 0.2f, 0.3f, 0.4f, 0.5f});
    EXPECT_EQ(mseDistortion(a, a), 0.0);
    EXPECT_EQ(linfDistortion(a, a), 0.0);
    EXPECT_EQ(l0Distortion(a, a), 0u);
    EXPECT_EQ(l2Distortion(a, a), 0.0);
}

TEST(Metrics, SingleElementTensors)
{
    nn::Tensor a(nn::flatShape(1), {0.5f});
    nn::Tensor b(nn::flatShape(1), {0.25f});
    EXPECT_NEAR(mseDistortion(a, b), 0.0625, 1e-9);
    EXPECT_NEAR(linfDistortion(a, b), 0.25, 1e-7);
    EXPECT_EQ(l0Distortion(a, b), 1u);
    EXPECT_NEAR(l2Distortion(a, b), 0.25, 1e-7);
}

TEST(Metrics, EmptyTensorsAreSafe)
{
    nn::Tensor a, b;
    EXPECT_EQ(mseDistortion(a, b), 0.0); // explicit 0/0 guard
    EXPECT_EQ(linfDistortion(a, b), 0.0);
    EXPECT_EQ(l0Distortion(a, b), 0u);
    EXPECT_EQ(l2Distortion(a, b), 0.0);
}

TEST(Metrics, L0ToleranceBoundaryIsStrict)
{
    // Differences strictly above tol count; a difference equal to tol
    // does not. Use exactly-representable values so the boundary is
    // exact in float and double alike.
    nn::Tensor a(nn::flatShape(3), {0.0f, 0.0f, 0.0f});
    nn::Tensor b(nn::flatShape(3), {0.5f, -0.5f, 0.25f});
    EXPECT_EQ(l0Distortion(a, b, 0.5), 0u);  // both 0.5 diffs == tol
    EXPECT_EQ(l0Distortion(a, b, 0.3), 2u);  // the ±0.5 diffs count
    EXPECT_EQ(l0Distortion(a, b, 0.25), 2u); // the 0.25 diff == tol
    EXPECT_EQ(l0Distortion(a, b, 0.1), 3u);
    EXPECT_EQ(l0Distortion(a, b, 0.0), 3u);
}

} // namespace
} // namespace ptolemy::attack
