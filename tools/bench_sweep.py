#!/usr/bin/env python3
"""Sweep the compute-core knobs over perf_smoke and pick defaults.

Runs the perf_smoke binary once per point of a small knob grid --
thread count (PTOLEMY_NUM_THREADS), SIMD mode (PTOLEMY_SIMD), the
wide-batch serving chunk (PTOLEMY_WIDE_CHUNK) and the persistent
packed-weight path (PTOLEMY_PREPACK) -- parses each run's
BENCH_micro.json, and emits:

* a Markdown summary table (one row per grid point, ranked by the
  selection metric) for humans and CI artifacts, and
* a machine-readable JSON file with the picked defaults (the env block
  of the winning run plus the metrics it won on), so a deployment or a
  later tuning pass can consume the recommendation directly.

The selection metric is end-to-end serving throughput
(``detect.batch_per_sec``) -- the knobs exist to serve detections, not
to win microbenchmarks -- with conv GFLOP/s and the forward cost split
reported alongside.

``--smoke`` shrinks the grid to a four-point sanity sweep (default
threads, both SIMD modes, packing on/off) sized for a CI leg; the full
grid is meant for an idle machine.  Each run inherits
PTOLEMY_BENCH_MIN_TIME (or ``--min-time``), so total wall time is
roughly grid-size x the per-run budget.

Usage:
    tools/bench_sweep.py [--build-dir build] [--smoke]
                         [--min-time 0.2] [--out-md BENCH_sweep.md]
                         [--out-json BENCH_sweep_picks.json]

Exit status: 0 on success (all runs completed), 1 when any grid point
fails to run or parse, 2 on usage errors.
"""

import argparse
import itertools
import json
import os
import subprocess
import sys
import tempfile

# Dotted keys pulled out of each run's BENCH_micro.json. The first is
# the selection metric; the rest are reported for context.
SELECT_KEY = "detect.batch_per_sec"
REPORT_KEYS = (
    SELECT_KEY,
    "detect.wide_batch_per_sec",
    "detect.forward_us_per_detect",
    "conv_fwd.gemm_gflops",
    "conv_fwd.prepack_speedup",
)


def dig(obj, dotted):
    """Fetch a dotted-path value from nested dicts, or None."""
    cur = obj
    for part in dotted.split("."):
        if not isinstance(cur, dict) or part not in cur:
            return None
        cur = cur[part]
    return cur


def grid_points(smoke):
    """Yield knob dicts. Values of None mean 'leave the env alone'
    (the binary's built-in default)."""
    if smoke:
        threads = [None]
        simd = [None, "scalar"]
        chunks = [None]
        prepack = ["1", "0"]
    else:
        threads = ["1", "2", "4"]
        simd = [None, "scalar"]
        chunks = ["32", "64", "128"]
        prepack = ["1", "0"]
    for t, s, c, p in itertools.product(threads, simd, chunks, prepack):
        yield {
            "PTOLEMY_NUM_THREADS": t,
            "PTOLEMY_SIMD": s,
            "PTOLEMY_WIDE_CHUNK": c,
            "PTOLEMY_PREPACK": p,
        }


def shown(knobs):
    """Human-readable knob values (defaults spelled out)."""
    return {
        "threads": knobs["PTOLEMY_NUM_THREADS"] or "auto",
        "simd": knobs["PTOLEMY_SIMD"] or "avx2",
        "wide_chunk": knobs["PTOLEMY_WIDE_CHUNK"] or "64",
        "prepack": knobs["PTOLEMY_PREPACK"],
    }


def run_point(binary, knobs, min_time):
    """Run perf_smoke under @p knobs; return its parsed JSON."""
    env = dict(os.environ)
    for k, v in knobs.items():
        env.pop(k, None)
        if v is not None:
            env[k] = v
    if min_time is not None:
        env["PTOLEMY_BENCH_MIN_TIME"] = str(min_time)
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tf:
        out_path = tf.name
    try:
        proc = subprocess.run([binary, out_path], env=env,
                              stdout=subprocess.PIPE,
                              stderr=subprocess.STDOUT, text=True)
        if proc.returncode != 0:
            raise RuntimeError(
                f"perf_smoke exited {proc.returncode}:\n{proc.stdout}")
        with open(out_path) as fh:
            return json.load(fh)
    finally:
        try:
            os.unlink(out_path)
        except OSError:
            pass


def fmt(v):
    if v is None:
        return "-"
    if isinstance(v, float):
        return f"{v:.4g}"
    return str(v)


def write_markdown(path, rows, pick, smoke, min_time):
    cols = ["threads", "simd", "wide_chunk", "prepack"]
    metrics = [k.split(".", 1)[1] for k in REPORT_KEYS]
    with open(path, "w") as fh:
        fh.write("# perf_smoke knob sweep\n\n")
        fh.write(f"Grid: {'smoke (CI sanity)' if smoke else 'full'}; "
                 f"per-run budget PTOLEMY_BENCH_MIN_TIME="
                 f"{min_time}s; ranked by `{SELECT_KEY}` "
                 "(higher is better).\n\n")
        fh.write("| " + " | ".join(cols + metrics) + " |\n")
        fh.write("|" + "---|" * (len(cols) + len(metrics)) + "\n")
        for row in rows:
            cells = [row["knobs"][c] for c in cols]
            cells += [fmt(row["metrics"].get(k)) for k in REPORT_KEYS]
            fh.write("| " + " | ".join(cells) + " |\n")
        fh.write("\nPicked defaults (best "
                 f"`{SELECT_KEY}`): ")
        fh.write(", ".join(f"{c}={pick['knobs'][c]}" for c in cols))
        fh.write(f" at {fmt(pick['metrics'].get(SELECT_KEY))}"
                 " detections/s.\n")


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--build-dir", default="build",
                    help="directory holding the perf_smoke binary")
    ap.add_argument("--smoke", action="store_true",
                    help="four-point sanity grid sized for a CI leg")
    ap.add_argument("--min-time", type=float, default=0.2,
                    help="per-measurement budget handed to perf_smoke "
                         "via PTOLEMY_BENCH_MIN_TIME (default 0.2)")
    ap.add_argument("--out-md", default="BENCH_sweep.md",
                    help="Markdown summary output path")
    ap.add_argument("--out-json", default="BENCH_sweep_picks.json",
                    help="picked-defaults JSON output path")
    args = ap.parse_args(argv)

    binary = os.path.join(args.build_dir, "perf_smoke")
    if not os.path.exists(binary):
        print(f"bench_sweep: {binary} not found (build first)",
              file=sys.stderr)
        return 2

    rows = []
    failures = 0
    points = list(grid_points(args.smoke))
    for i, knobs in enumerate(points):
        label = " ".join(f"{k}={v}" for k, v in shown(knobs).items())
        print(f"[{i + 1}/{len(points)}] {label}", flush=True)
        try:
            bench = run_point(binary, knobs, args.min_time)
        except (RuntimeError, OSError, json.JSONDecodeError) as e:
            print(f"bench_sweep: grid point failed: {e}", file=sys.stderr)
            failures += 1
            continue
        rows.append({
            "knobs": shown(knobs),
            "env": {k: v for k, v in knobs.items() if v is not None},
            "metrics": {k: dig(bench, k) for k in REPORT_KEYS},
        })

    if not rows:
        print("bench_sweep: no grid point succeeded", file=sys.stderr)
        return 1

    rows.sort(key=lambda r: r["metrics"].get(SELECT_KEY) or 0.0,
              reverse=True)
    pick = rows[0]
    write_markdown(args.out_md, rows, pick, args.smoke, args.min_time)
    with open(args.out_json, "w") as fh:
        json.dump({
            "select_key": SELECT_KEY,
            "picked_env": pick["env"],
            "picked_knobs": pick["knobs"],
            "metrics": pick["metrics"],
            "grid": "smoke" if args.smoke else "full",
            "rows": rows,
        }, fh, indent=2)
        fh.write("\n")

    print(f"bench_sweep: wrote {args.out_md} and {args.out_json}; "
          f"best {SELECT_KEY} = "
          f"{fmt(pick['metrics'].get(SELECT_KEY))} with "
          + ", ".join(f"{c}={pick['knobs'][c]}"
                      for c in ("threads", "simd", "wide_chunk",
                                "prepack")))
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
