/**
 * @file
 * Training-determinism probe for CI: trains a small CNN (with a Norm2d
 * layer, so the deferred-stat path is exercised) on synthetic data
 * using the process-wide pool, then prints an FNV-1a hash of every
 * trained parameter and state buffer. Running it under different
 * PTOLEMY_NUM_THREADS values must print the same hash — that is the
 * data-parallel trainer's bit-identity contract.
 *
 * Exit status is always 0 on success; the comparison happens in CI
 * (hash of the 1-thread run vs the 2-thread run).
 */

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>

#include "data/synthetic.hh"
#include "nn/common_layers.hh"
#include "nn/conv.hh"
#include "nn/init.hh"
#include "nn/linear.hh"
#include "nn/network.hh"
#include "nn/trainer.hh"
#include "util/thread_pool.hh"

namespace
{

using namespace ptolemy;

std::uint64_t
fnv1a(std::uint64_t h, const void *data, std::size_t n)
{
    const unsigned char *p = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

nn::Network
makeProbeNet()
{
    nn::Network net("probe", nn::mapShape(3, 16, 16));
    net.add(std::make_unique<nn::Conv2d>("conv1", 3, 8, 3, 1, 1));
    net.add(std::make_unique<nn::Norm2d>("norm1", 8));
    net.add(std::make_unique<nn::ReLU>("relu1"));
    net.add(std::make_unique<nn::MaxPool2d>("pool1", 2)); // 8x8
    net.add(std::make_unique<nn::Conv2d>("conv2", 8, 12, 3, 1, 1));
    net.add(std::make_unique<nn::ReLU>("relu2"));
    net.add(std::make_unique<nn::MaxPool2d>("pool2", 2)); // 4x4
    net.add(std::make_unique<nn::Flatten>("flat"));
    net.add(std::make_unique<nn::Linear>("fc", 12 * 4 * 4, 10));
    return net;
}

} // namespace

int
main()
{
    data::DatasetSpec spec;
    spec.numClasses = 10;
    spec.trainPerClass = 20;
    spec.testPerClass = 2;
    spec.seed = 42;
    const auto ds = data::makeSyntheticDataset(spec);

    auto net = makeProbeNet();
    nn::heInit(net, 7);
    nn::TrainConfig tc;
    tc.epochs = 3;
    tc.learningRate = 0.02;
    nn::Trainer trainer(tc);
    trainer.train(net, ds.train);

    std::uint64_t h = 0xcbf29ce484222325ull;
    for (auto p : net.params())
        h = fnv1a(h, p.value->data(), p.value->size() * sizeof(float));
    for (int id = 0; id < net.numNodes(); ++id)
        for (auto p : net.layerAt(id).state())
            h = fnv1a(h, p.value->data(), p.value->size() * sizeof(float));

    std::printf("threads=%u weights_hash=%016llx acc=%.4f\n",
                globalPool().size(),
                static_cast<unsigned long long>(h),
                nn::Trainer::evaluate(net, ds.test));
    return 0;
}
