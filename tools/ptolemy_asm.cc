/**
 * @file
 * ptolemy-asm — command-line assembler / disassembler / simulator for the
 * Ptolemy ISA.
 *
 * Usage:
 *   ptolemy_asm asm  <file.s>          assemble; print hex words
 *   ptolemy_asm dis  <file.s>          assemble then disassemble (check)
 *   ptolemy_asm sim  <file.s> [--merge N] [--sort-units N] [--accum N]
 *                                      assemble and run on the cycle model
 *
 * The simulator flags mirror the path-constructor provisioning knobs of
 * paper Fig. 18. `--accum N` sets the profiled accumulate length used for
 * acum instructions (workload metadata the compiler would provide).
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "hw/simulator.hh"
#include "isa/assembler.hh"

using namespace ptolemy;

namespace
{

int
usage()
{
    std::fprintf(stderr,
                 "usage: ptolemy_asm asm|dis|sim <file.s> "
                 "[--merge N] [--sort-units N] [--accum N]\n");
    return 2;
}

bool
readFile(const std::string &path, std::string &out)
{
    std::ifstream is(path);
    if (!is)
        return false;
    std::ostringstream ss;
    ss << is.rdbuf();
    out = ss.str();
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 3)
        return usage();
    const std::string mode = argv[1];
    std::string source;
    if (!readFile(argv[2], source)) {
        std::fprintf(stderr, "cannot read %s\n", argv[2]);
        return 1;
    }

    auto res = isa::assemble(source);
    if (!res.ok) {
        std::fprintf(stderr, "assembly error: %s\n", res.error.c_str());
        return 1;
    }

    if (mode == "asm") {
        for (std::size_t i = 0; i < res.program.size(); ++i)
            std::printf("%06x\n", res.program.instruction(i).encode());
        return 0;
    }
    if (mode == "dis") {
        std::fputs(res.program.disassemble().c_str(), stdout);
        return 0;
    }
    if (mode != "sim")
        return usage();

    hw::HwConfig cfg = hw::HwConfig::baseline();
    std::size_t accum_len = 16;
    for (int i = 3; i + 1 < argc; i += 2) {
        if (!std::strcmp(argv[i], "--merge"))
            cfg.mergeTreeLen = std::atoi(argv[i + 1]);
        else if (!std::strcmp(argv[i], "--sort-units"))
            cfg.numSortUnits = std::atoi(argv[i + 1]);
        else if (!std::strcmp(argv[i], "--accum"))
            accum_len = static_cast<std::size_t>(std::atoll(argv[i + 1]));
        else
            return usage();
    }
    for (std::size_t i = 0; i < res.program.size(); ++i)
        if (res.program.instruction(i).op == isa::Opcode::Acum)
            res.program.meta(i).accumLen = accum_len;

    const auto rep = hw::Simulator(cfg).run(res.program);
    std::printf("instructions executed: %llu\n",
                static_cast<unsigned long long>(rep.instructionsExecuted));
    std::printf("cycles:  %llu (%.2f us @ %.0f MHz)\n",
                static_cast<unsigned long long>(rep.cycles),
                rep.latencyUs(cfg.clockMhz), cfg.clockMhz);
    std::printf("energy:  %.1f nJ   avg power: %.2f mW\n",
                rep.energyPj / 1e3, rep.avgPowerMw(cfg.clockMhz));
    for (int u = 0; u < hw::kNumFuncUnits; ++u)
        std::printf("  %-6s busy %llu cycles\n",
                    hw::funcUnitName(static_cast<hw::FuncUnit>(u)),
                    static_cast<unsigned long long>(rep.unitBusyCycles[u]));
    return 0;
}
