/**
 * @file
 * ptolemy-asm — command-line assembler / disassembler / simulator for the
 * Ptolemy ISA.
 *
 * Usage:
 *   ptolemy_asm asm  <file.s>          assemble; print hex words
 *   ptolemy_asm dis  <file.s>          assemble then disassemble (check)
 *   ptolemy_asm sim  <file.s> [--merge N] [--sort-units N] [--accum N]
 *                                      assemble and run on the cycle model
 *   ptolemy_asm roundtrip [file.s]     disassemble -> reassemble -> compare
 *                                      encodings; exits non-zero on any
 *                                      byte mismatch. Without a file, runs
 *                                      the check over a built-in set of
 *                                      compiler-emitted programs
 *                                      (inference-only, BwCu, BwCu batch-8,
 *                                      BwCu store-psums).
 *
 * The simulator flags mirror the path-constructor provisioning knobs of
 * paper Fig. 18. `--accum N` sets the profiled accumulate length used for
 * acum instructions (workload metadata the compiler would provide).
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "compiler/compiler.hh"
#include "hw/simulator.hh"
#include "isa/assembler.hh"
#include "models/zoo.hh"
#include "path/extractor.hh"
#include "util/rng.hh"

using namespace ptolemy;

namespace
{

int
usage()
{
    std::fprintf(stderr,
                 "usage: ptolemy_asm asm|dis|sim <file.s> "
                 "[--merge N] [--sort-units N] [--accum N]\n"
                 "       ptolemy_asm roundtrip [file.s]\n");
    return 2;
}

bool
readFile(const std::string &path, std::string &out)
{
    std::ifstream is(path);
    if (!is)
        return false;
    std::ostringstream ss;
    ss << is.rdbuf();
    out = ss.str();
    return true;
}

/**
 * Disassemble @p prog, reassemble the text, and byte-compare every
 * instruction encoding. Returns 0 on a clean round trip, 1 otherwise.
 */
int
roundtripCheck(const std::string &name, const isa::Program &prog)
{
    const std::string listing = prog.disassemble();
    const auto res = isa::assemble(listing);
    if (!res.ok) {
        std::fprintf(stderr, "%s: reassembly failed: %s\n", name.c_str(),
                     res.error.c_str());
        return 1;
    }
    if (res.program.size() != prog.size()) {
        std::fprintf(stderr,
                     "%s: instruction count changed: %zu -> %zu\n",
                     name.c_str(), prog.size(), res.program.size());
        return 1;
    }
    for (std::size_t i = 0; i < prog.size(); ++i) {
        const auto a = prog.instruction(i).encode();
        const auto b = res.program.instruction(i).encode();
        if (a != b) {
            std::fprintf(stderr,
                         "%s: byte mismatch at %zu: %06x -> %06x (%s)\n",
                         name.c_str(), i, a, b,
                         prog.instruction(i).toString().c_str());
            return 1;
        }
    }
    std::printf("%s: %zu instructions round-trip byte-identical\n",
                name.c_str(), prog.size());
    return 0;
}

/** Built-in round-trip corpus: real compiler output, covering every
 *  emission shape (plain inference, infsp/csps extraction loops, and the
 *  batch countdown loop with its mov/dec/jne control flow). */
int
roundtripBuiltins()
{
    nn::Network net = models::makeMiniAlexNet(10);
    Rng rng(0x1517);
    nn::Tensor x(net.inputShape());
    for (auto &v : x.vec())
        v = static_cast<float>(rng.gaussian());
    auto rec = net.forward(x);

    const int n = static_cast<int>(net.weightedNodes().size());
    const auto cfg = path::ExtractionConfig::bwCu(n, 0.5);
    path::PathExtractor ex(net, cfg);
    path::ExtractionTrace trace;
    ex.extract(rec, &trace);

    std::vector<std::pair<std::string, isa::Program>> progs;
    progs.emplace_back("inference-only",
                       compiler::Compiler::inferenceOnly(net));
    compiler::CompileOptions all;
    progs.emplace_back("bwcu",
                       compiler::Compiler(net, cfg, all).compile(trace));
    compiler::CompileOptions batched;
    batched.batchSize = 8;
    progs.emplace_back(
        "bwcu-batch8",
        compiler::Compiler(net, cfg, batched).compile(trace));
    compiler::CompileOptions store;
    store.recomputePsums = false;
    progs.emplace_back(
        "bwcu-storepsums",
        compiler::Compiler(net, cfg, store).compile(trace));

    int rc = 0;
    for (const auto &[name, prog] : progs)
        rc |= roundtripCheck(name, prog);
    return rc;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string mode = argv[1];

    if (mode == "roundtrip" && argc == 2)
        return roundtripBuiltins();

    if (argc < 3)
        return usage();
    std::string source;
    if (!readFile(argv[2], source)) {
        std::fprintf(stderr, "cannot read %s\n", argv[2]);
        return 1;
    }

    auto res = isa::assemble(source);
    if (!res.ok) {
        std::fprintf(stderr, "assembly error: %s\n", res.error.c_str());
        return 1;
    }

    if (mode == "asm") {
        for (std::size_t i = 0; i < res.program.size(); ++i)
            std::printf("%06x\n", res.program.instruction(i).encode());
        return 0;
    }
    if (mode == "dis") {
        std::fputs(res.program.disassemble().c_str(), stdout);
        return 0;
    }
    if (mode == "roundtrip")
        return roundtripCheck(argv[2], res.program);
    if (mode != "sim")
        return usage();

    hw::HwConfig cfg = hw::HwConfig::baseline();
    std::size_t accum_len = 16;
    for (int i = 3; i + 1 < argc; i += 2) {
        if (!std::strcmp(argv[i], "--merge"))
            cfg.mergeTreeLen = std::atoi(argv[i + 1]);
        else if (!std::strcmp(argv[i], "--sort-units"))
            cfg.numSortUnits = std::atoi(argv[i + 1]);
        else if (!std::strcmp(argv[i], "--accum"))
            accum_len = static_cast<std::size_t>(std::atoll(argv[i + 1]));
        else
            return usage();
    }
    for (std::size_t i = 0; i < res.program.size(); ++i)
        if (res.program.instruction(i).op == isa::Opcode::Acum)
            res.program.meta(i).accumLen = accum_len;

    const auto rep = hw::Simulator(cfg).run(res.program);
    std::printf("instructions executed: %llu\n",
                static_cast<unsigned long long>(rep.instructionsExecuted));
    std::printf("cycles:  %llu (%.2f us @ %.0f MHz)\n",
                static_cast<unsigned long long>(rep.cycles),
                rep.latencyUs(cfg.clockMhz), cfg.clockMhz);
    std::printf("energy:  %.1f nJ   avg power: %.2f mW\n",
                rep.energyPj / 1e3, rep.avgPowerMw(cfg.clockMhz));
    for (int u = 0; u < hw::kNumFuncUnits; ++u)
        std::printf("  %-6s busy %llu cycles\n",
                    hw::funcUnitName(static_cast<hw::FuncUnit>(u)),
                    static_cast<unsigned long long>(rep.unitBusyCycles[u]));
    return 0;
}
