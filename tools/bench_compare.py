#!/usr/bin/env python3
"""Compare a fresh perf_smoke/serve_load JSON against a checked-in baseline.

The gate distinguishes three kinds of metric:

* **Ratio keys** (``*speedup*``, ``avx2_vs_scalar``) are machine
  independent — both sides of the division ran on the same host, so a
  drop past the noise band means a real relative regression (e.g. the
  AVX2 kernel silently falling back to scalar, or the batched path
  losing to the one it replaced).  These HARD-FAIL everywhere.
* **Allocation counters** (``allocs_*``, ``steady_state_allocs``) must
  never increase: the serving steady state is allocation-free by
  contract and a single new alloc per batch is a real leak of that
  contract, not noise.  These HARD-FAIL everywhere, with zero band.
* **Absolute throughputs** (``*_per_sec``, ``*gflops*``) depend on the
  host.  They hard-fail locally (same machine as the baseline) but only
  WARN under ``--warn-only-absolutes`` (CI runners differ from the
  machine that recorded the baseline).
* **Exact metrics** (everything under ``hw.``) are deterministic
  integers — cycle counts, instruction counts, DRAM bytes from the
  cycle-level simulator over a fixed profiled trace.  There is no noise
  band and no direction: ANY difference from the baseline hard-fails,
  in either direction, like the allocation counters.  An intentional
  compiler or timing-model change must re-baseline via
  ``tools/bench_update_baseline``.

``--prefix hw.`` restricts the comparison to keys under one dotted
prefix (the CI codesign leg gates only the deterministic hw block that
way, leaving throughput gating to the perf leg).

Keys present in only one file are reported but never fatal, so adding a
benchmark does not require updating the baseline atomically.  Latency
percentiles and shed rates under ``serve.points`` are skipped: they are
load-dependent coordinates, not metrics with a monotone "better".

Exit status: 0 clean, 1 on any hard failure, 2 on usage/IO errors.

Usage:
    bench_compare.py BASELINE FRESH [--noise 0.30] [--warn-only-absolutes]
    bench_compare.py --self-test
"""

import argparse
import json
import sys

# Metrics where a *decrease* is a regression but the absolute value is
# machine-dependent.  Substring match on the flattened dotted key.
HIGHER_IS_BETTER = (
    "_per_sec",
    "gflops",
    "ops_per_sec",
    "capacity_per_sec",
)

# Machine-independent ratios: both numerator and denominator were
# measured on the same host in the same process.
RATIO_MARKERS = ("speedup", "avx2_vs_scalar")

# Ratios that compare two near-equal schedules and jitter with cache
# state; they are reported but gated only as absolutes (warn-only in
# CI).  wide-vs-fused in particular is expected to hover around 1.0 on
# a single core, where the fused pipeline's cache locality offsets the
# wide path's batched GEMMs.
INFORMATIONAL_RATIOS = (
    "detect.wide_speedup_vs_fused",
    "detect.batch_speedup_vs_single_stream",
    "train.speedup_vs_1thread",
    # Packed-vs-per-call forward on the small serving probe: the two
    # schedules measure within noise of each other there (the packed
    # win concentrates in wider channel counts), so the hard prepack
    # gate is conv_fwd.prepack_speedup and this one just reports.
    "detect.forward_prepack_speedup",
)

ALLOC_MARKERS = ("allocs", "steady_state_allocs")

# Deterministic simulator/compiler metrics: gated exactly, both
# directions, zero band.  telemetry.mem.* is the sketch geometry and
# footprint derived purely from the (epsilon, delta) error-bound
# config — any drift there is a silent change to the provable error
# bound, not noise.
EXACT_PREFIXES = ("hw.", "telemetry.mem.")

# Load-curve coordinates, not monotone metrics.  The _trial_ markers
# are perf_smoke's median-of-N spread diagnostics (fastest/slowest
# trial): by construction noisier than the gated median, recorded for
# humans reading the artifact, never gated.
SKIP_MARKERS = ("serve.points", "path_bits_last", "shed_rate", "_trial_")


def flatten(obj, prefix=""):
    """Flatten nested dicts/lists into dotted-path -> scalar."""
    out = {}
    if isinstance(obj, dict):
        for k, v in obj.items():
            out.update(flatten(v, f"{prefix}{k}."))
    elif isinstance(obj, list):
        for i, v in enumerate(obj):
            out.update(flatten(v, f"{prefix}{i}."))
    else:
        out[prefix[:-1]] = obj
    return out


def classify(key):
    lk = key.lower()
    if any(m in lk for m in SKIP_MARKERS):
        return "skip"
    if any(lk.startswith(p) for p in EXACT_PREFIXES):
        return "exact"
    if any(m in lk for m in ALLOC_MARKERS):
        return "alloc"
    if any(m in lk for m in RATIO_MARKERS):
        if any(lk == m or lk.endswith(m) for m in INFORMATIONAL_RATIOS):
            return "absolute"
        return "ratio"
    if any(m in lk for m in HIGHER_IS_BETTER):
        return "absolute"
    return "skip"


def compare(baseline, fresh, noise, warn_only_absolutes, out=sys.stdout,
            prefix=None):
    """Return (hard_failures, warnings) comparing two flattened dicts."""
    base = flatten(baseline)
    new = flatten(fresh)
    if prefix:
        base = {k: v for k, v in base.items() if k.startswith(prefix)}
        new = {k: v for k, v in new.items() if k.startswith(prefix)}
    failures = []
    warnings = []

    for key in sorted(set(base) & set(new)):
        kind = classify(key)
        if kind == "skip":
            continue
        b, f = base[key], new[key]
        if not isinstance(b, (int, float)) or not isinstance(f, (int, float)):
            continue
        if kind == "exact":
            if f != b:
                failures.append(
                    f"EXACT  {key}: {b} -> {f} (deterministic hw metric "
                    "must match the baseline exactly; re-baseline via "
                    "tools/bench_update_baseline if the change is "
                    "intentional)")
            continue
        if kind == "alloc":
            if f > b:
                failures.append(
                    f"ALLOC  {key}: {b} -> {f} (steady state must not "
                    "allocate more)")
            continue
        floor = b * (1.0 - noise)
        if f >= floor:
            continue
        msg = (f"{key}: {f:.4g} < {b:.4g} * (1 - {noise:.2f}) "
               f"= {floor:.4g}")
        if kind == "ratio":
            failures.append("RATIO  " + msg)
        elif warn_only_absolutes:
            warnings.append("ABS    " + msg)
        else:
            failures.append("ABS    " + msg)

    # Exact metrics must exist on both sides: a vanished or un-baselined
    # hw key is a silent hole in the deterministic gate, not an optional
    # extra benchmark.
    for key in sorted(set(base) - set(new)):
        kind = classify(key)
        if kind == "exact":
            failures.append(f"EXACT  {key}: in baseline but missing from "
                            "fresh run")
        elif kind != "skip":
            warnings.append(f"MISSING {key}: in baseline but not in fresh "
                            "run")
    for key in sorted(set(new) - set(base)):
        kind = classify(key)
        if kind == "exact" and isinstance(new[key], (int, float)):
            failures.append(f"EXACT  {key}: not in baseline (re-baseline "
                            "via tools/bench_update_baseline)")
        elif kind != "skip":
            warnings.append(f"NEW     {key}: not in baseline (consider "
                            "tools/bench_update_baseline)")

    for w in warnings:
        print(f"warn: {w}", file=out)
    for f in failures:
        print(f"FAIL: {f}", file=out)
    if not failures:
        n = len([k for k in set(base) & set(new) if classify(k) != "skip"])
        print(f"bench_compare: {n} gated metrics within "
              f"{noise:.0%} of baseline", file=out)
    return failures, warnings


def self_test():
    """Gate sanity: an injected regression must fail, a clean run must not."""
    baseline = {
        "detect": {
            "batch_per_sec": 4000.0,
            "batch_speedup_vs_legacy": 3.3,
            "allocs_per_batch": 0,
        },
        "conv_fwd": {
            "gemm_gflops": 50.0,
            "gemm_gflops_trial_min": 40.0,
            "prepack_speedup": 1.3,
        },
        "similarity": {
            "w65536": {"and_popcount_ops_per_sec": 3.0e6,
                       "avx2_vs_scalar": 7.0}
        },
        "hw": {
            "inference_cycles": 6994,
            "opt_all": {"cycles": 14995, "instrs": 88},
        },
        "telemetry": {
            "attached_vs_plain_speedup": 1.01,
            "allocs_per_window": 0,
            "mem": {"sketch_width": 1024, "sketch_bytes": 20480},
        },
    }
    import copy

    clean = copy.deepcopy(baseline)
    clean["detect"]["batch_per_sec"] *= 1.02  # ordinary jitter
    f, _ = compare(baseline, clean, 0.30, False)
    assert not f, f"clean run flagged: {f}"

    ratio_reg = copy.deepcopy(baseline)
    ratio_reg["similarity"]["w65536"]["avx2_vs_scalar"] = 1.0  # kernel lost
    f, _ = compare(baseline, ratio_reg, 0.30, True)
    assert any("avx2_vs_scalar" in x for x in f), \
        "injected ratio regression not caught under --warn-only-absolutes"

    alloc_reg = copy.deepcopy(baseline)
    alloc_reg["detect"]["allocs_per_batch"] = 1
    f, _ = compare(baseline, alloc_reg, 0.30, True)
    assert any("allocs_per_batch" in x for x in f), \
        "injected allocation regression not caught"

    # Packed-vs-on-the-fly is a same-host ratio: losing it (the packed
    # path silently falling back or regressing) must hard-fail even
    # under --warn-only-absolutes, while the median-of-N spread
    # diagnostics are never gated no matter how wide the trials swing.
    pack_reg = copy.deepcopy(baseline)
    pack_reg["conv_fwd"]["prepack_speedup"] = 0.7
    f, _ = compare(baseline, pack_reg, 0.30, True)
    assert any("prepack_speedup" in x for x in f), \
        "injected prepack ratio regression not caught"
    spread = copy.deepcopy(baseline)
    spread["conv_fwd"]["gemm_gflops_trial_min"] = 1.0
    f, _ = compare(baseline, spread, 0.30, False)
    assert not any("trial_min" in x for x in f), \
        "trial-spread diagnostic should never be gated"

    abs_reg = copy.deepcopy(baseline)
    abs_reg["detect"]["batch_per_sec"] = 1000.0
    f, _ = compare(baseline, abs_reg, 0.30, False)
    assert any("batch_per_sec" in x for x in f), \
        "absolute regression not caught in local mode"
    f, w = compare(baseline, abs_reg, 0.30, True)
    assert not f and any("batch_per_sec" in x for x in w), \
        "absolute regression should only warn under --warn-only-absolutes"

    # Deterministic hw metrics are gated exactly, with no noise band and
    # in BOTH directions — a one-cycle change must fail even under
    # --warn-only-absolutes, and so must an "improvement".
    cyc_reg = copy.deepcopy(baseline)
    cyc_reg["hw"]["opt_all"]["cycles"] += 1
    f, _ = compare(baseline, cyc_reg, 0.30, True)
    assert any("hw.opt_all.cycles" in x for x in f), \
        "injected cycle-count change not caught"
    cyc_imp = copy.deepcopy(baseline)
    cyc_imp["hw"]["opt_all"]["cycles"] -= 1000
    f, _ = compare(baseline, cyc_imp, 0.30, True)
    assert any("hw.opt_all.cycles" in x for x in f), \
        "un-baselined cycle-count improvement not caught"
    missing_hw = copy.deepcopy(baseline)
    del missing_hw["hw"]["inference_cycles"]
    f, _ = compare(baseline, missing_hw, 0.30, True)
    assert any("hw.inference_cycles" in x for x in f), \
        "vanished hw metric not caught"

    # --prefix restricts the gate: with prefix hw., a throughput
    # regression is invisible but the cycle change still fails.
    both = copy.deepcopy(baseline)
    both["detect"]["batch_per_sec"] = 1000.0
    both["hw"]["opt_all"]["cycles"] += 1
    f, _ = compare(baseline, both, 0.30, False, prefix="hw.")
    assert any("hw.opt_all.cycles" in x for x in f), \
        "cycle change not caught under --prefix hw."
    assert not any("batch_per_sec" in x for x in f), \
        "--prefix hw. should not gate non-hw keys"

    # Telemetry gates: the ingest-overhead ratio is same-host (hard
    # fails), the per-window allocation counter must never grow, and
    # the error-bound-derived sketch geometry is exact in both
    # directions like the hw block.
    tel_ratio = copy.deepcopy(baseline)
    tel_ratio["telemetry"]["attached_vs_plain_speedup"] = 0.5
    f, _ = compare(baseline, tel_ratio, 0.30, True)
    assert any("attached_vs_plain_speedup" in x for x in f), \
        "injected telemetry overhead regression not caught"
    tel_alloc = copy.deepcopy(baseline)
    tel_alloc["telemetry"]["allocs_per_window"] = 3
    f, _ = compare(baseline, tel_alloc, 0.30, True)
    assert any("allocs_per_window" in x for x in f), \
        "injected telemetry allocation regression not caught"
    tel_mem = copy.deepcopy(baseline)
    tel_mem["telemetry"]["mem"]["sketch_bytes"] = 10240  # bound shrank
    f, _ = compare(baseline, tel_mem, 0.30, True)
    assert any("telemetry.mem.sketch_bytes" in x for x in f), \
        "sketch-geometry change not caught by the exact gate"

    print("bench_compare: self-test passed")
    return 0


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline", nargs="?")
    ap.add_argument("fresh", nargs="?")
    ap.add_argument("--noise", type=float, default=0.30,
                    help="allowed fractional drop before failing "
                         "(default 0.30)")
    ap.add_argument("--warn-only-absolutes", action="store_true",
                    help="machine-dependent absolutes warn instead of "
                         "failing (for CI runners that differ from the "
                         "baseline host)")
    ap.add_argument("--prefix",
                    help="gate only keys under this dotted prefix "
                         "(e.g. 'hw.' for the deterministic codesign "
                         "block)")
    ap.add_argument("--self-test", action="store_true",
                    help="verify the gate catches injected regressions")
    args = ap.parse_args(argv)

    if args.self_test:
        return self_test()
    if not args.baseline or not args.fresh:
        ap.error("BASELINE and FRESH are required unless --self-test")
    try:
        with open(args.baseline) as fh:
            baseline = json.load(fh)
        with open(args.fresh) as fh:
            fresh = json.load(fh)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_compare: {e}", file=sys.stderr)
        return 2
    failures, _ = compare(baseline, fresh, args.noise,
                          args.warn_only_absolutes, prefix=args.prefix)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
