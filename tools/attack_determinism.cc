/**
 * @file
 * Attack-determinism probe for CI: trains a small CNN on synthetic
 * data, runs every attack in the evaluation suite through
 * core::buildAttackPairs (the same path evaluateSuite takes), and
 * prints an FNV-1a hash of every produced adversarial (bytes + label +
 * mse). Running it under different PTOLEMY_NUM_THREADS values must
 * print the same hashes — that is the batched attack engine's
 * bit-identity contract (adversarials depend only on the input, label
 * and sample index, never on batch composition or thread count).
 *
 * Two hashes are printed:
 *  - suite_hash: the five standard deterministic attacks (BIM, CWL2,
 *    DeepFool, FGSM, JSMA). Also stable across the engine's
 *    serial-vs-batched paths and across refactors that preserve the
 *    per-sample math.
 *  - full_hash: suite plus the randomized attacks (PGD and the
 *    adaptive activation-matching attack), whose randomness is keyed
 *    by (seed, sampleIndex) so it too is thread-count invariant.
 *
 * Exit status is always 0 on success; the comparison happens in CI
 * (hashes of the 1-thread run vs the 2-thread run).
 */

#include <cstdint>
#include <cstdio>
#include <memory>

#include "attack/adaptive.hh"
#include "attack/gradient_attacks.hh"
#include "attack/suite.hh"
#include "core/evaluation.hh"
#include "data/synthetic.hh"
#include "nn/common_layers.hh"
#include "nn/conv.hh"
#include "nn/init.hh"
#include "nn/linear.hh"
#include "nn/network.hh"
#include "nn/trainer.hh"
#include "util/thread_pool.hh"

namespace
{

using namespace ptolemy;

std::uint64_t
fnv1a(std::uint64_t h, const void *data, std::size_t n)
{
    const unsigned char *p = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

nn::Network
makeProbeNet()
{
    nn::Network net("attack_probe", nn::mapShape(3, 16, 16));
    net.add(std::make_unique<nn::Conv2d>("conv1", 3, 8, 3, 1, 1));
    net.add(std::make_unique<nn::ReLU>("relu1"));
    net.add(std::make_unique<nn::MaxPool2d>("pool1", 2)); // 8x8
    net.add(std::make_unique<nn::Conv2d>("conv2", 8, 12, 3, 1, 1));
    net.add(std::make_unique<nn::ReLU>("relu2"));
    net.add(std::make_unique<nn::MaxPool2d>("pool2", 2)); // 4x4
    net.add(std::make_unique<nn::Flatten>("flat"));
    net.add(std::make_unique<nn::Linear>("fc", 12 * 4 * 4, 10));
    return net;
}

std::uint64_t
hashPairs(std::uint64_t h, const std::vector<core::DetectionPair> &pairs)
{
    for (const auto &p : pairs) {
        h = fnv1a(h, p.adversarial.data(),
                  p.adversarial.size() * sizeof(float));
        const std::uint64_t label = p.label;
        h = fnv1a(h, &label, sizeof(label));
        h = fnv1a(h, &p.mse, sizeof(p.mse));
    }
    return h;
}

} // namespace

int
main()
{
    data::DatasetSpec spec;
    spec.numClasses = 10;
    spec.trainPerClass = 20;
    spec.testPerClass = 4;
    spec.seed = 42;
    const auto ds = data::makeSyntheticDataset(spec);

    auto net = makeProbeNet();
    nn::heInit(net, 7);
    nn::TrainConfig tc;
    tc.epochs = 3;
    tc.learningRate = 0.02;
    nn::Trainer trainer(tc);
    trainer.train(net, ds.train);

    constexpr int kCap = 12;
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (const auto &atk : attack::makeStandardAttacks()) {
        const auto pairs =
            core::buildAttackPairs(net, *atk, ds.test, kCap, 0xE7A1);
        h = hashPairs(h, pairs);
    }
    const std::uint64_t suite_hash = h;

    {
        attack::Pgd pgd;
        const auto pairs =
            core::buildAttackPairs(net, pgd, ds.test, kCap, 0xE7A1);
        h = hashPairs(h, pairs);
    }
    {
        attack::AdaptiveActivationAttack at(2, &ds.train, /*num_targets=*/2,
                                            /*iters=*/15, /*lr=*/0.08);
        const auto pairs =
            core::buildAttackPairs(net, at, ds.test, kCap, 0xE7A1);
        h = hashPairs(h, pairs);
    }

    std::printf("threads=%u suite_hash=%016llx full_hash=%016llx\n",
                globalPool().size(),
                static_cast<unsigned long long>(suite_hash),
                static_cast<unsigned long long>(h));
    return 0;
}
