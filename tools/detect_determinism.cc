/**
 * @file
 * Detection-determinism probe for CI: trains a small CNN on synthetic
 * data, builds a fitted DetectorModel (class paths + forest), then
 * serves a batch of mixed clean/perturbed inputs through the fused
 * DetectorSession::detectBatch on the process-wide pool and prints an
 * FNV-1a hash of every Decision (score bits, predicted class, verdict,
 * per-layer features). Running it under different PTOLEMY_NUM_THREADS
 * values must print the same hash — the serving API's bit-identity
 * contract (Decisions depend only on the input, never on batch
 * composition, slot scheduling or thread count).
 *
 * Two hashes are printed:
 *  - batch_hash: decisions from one fused detectBatch over the pool.
 *  - full_hash: batch_hash folded with a sequential session.detect
 *    pass and a save->load->detect round trip over a second model, so
 *    the persisted artifacts provably serve bit-identically too.
 *
 * Exit status: 0 on success, 1 if the save->load round trip fails
 * (persistence breakage is thread-count-independent, so the CI hash
 * diff alone would not catch it). The hash comparison happens in CI
 * (hashes of the 1-thread run vs the 2-thread run).
 */

#include <cstdint>
#include <cstdio>
#include <memory>
#include <vector>

#include "core/detector_model.hh"
#include "core/detector_session.hh"
#include "data/synthetic.hh"
#include "nn/common_layers.hh"
#include "nn/conv.hh"
#include "nn/init.hh"
#include "nn/linear.hh"
#include "nn/network.hh"
#include "nn/trainer.hh"
#include "util/rng.hh"
#include "util/thread_pool.hh"

namespace
{

using namespace ptolemy;

std::uint64_t
fnv1a(std::uint64_t h, const void *data, std::size_t n)
{
    const unsigned char *p = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

nn::Network
makeProbeNet()
{
    nn::Network net("detect_probe", nn::mapShape(3, 16, 16));
    net.add(std::make_unique<nn::Conv2d>("conv1", 3, 8, 3, 1, 1));
    net.add(std::make_unique<nn::ReLU>("relu1"));
    net.add(std::make_unique<nn::MaxPool2d>("pool1", 2)); // 8x8
    net.add(std::make_unique<nn::Conv2d>("conv2", 8, 12, 3, 1, 1));
    net.add(std::make_unique<nn::ReLU>("relu2"));
    net.add(std::make_unique<nn::MaxPool2d>("pool2", 2)); // 4x4
    net.add(std::make_unique<nn::Flatten>("flat"));
    net.add(std::make_unique<nn::Linear>("fc", 12 * 4 * 4, 10));
    return net;
}

std::uint64_t
hashDecisions(std::uint64_t h, const std::vector<core::Decision> &ds)
{
    for (const auto &d : ds) {
        const std::uint64_t pred = d.predictedClass;
        const std::uint8_t adv = d.adversarial ? 1 : 0;
        h = fnv1a(h, &pred, sizeof(pred));
        h = fnv1a(h, &adv, sizeof(adv));
        h = fnv1a(h, &d.score, sizeof(d.score));
        h = fnv1a(h, &d.features.overall, sizeof(d.features.overall));
        if (!d.features.perLayer.empty())
            h = fnv1a(h, d.features.perLayer.data(),
                      d.features.perLayer.size() * sizeof(double));
    }
    return h;
}

} // namespace

int
main()
{
    data::DatasetSpec spec;
    spec.numClasses = 10;
    spec.trainPerClass = 20;
    spec.testPerClass = 4;
    spec.seed = 42;
    const auto ds = data::makeSyntheticDataset(spec);

    auto net = makeProbeNet();
    nn::heInit(net, 7);
    nn::TrainConfig tc;
    tc.epochs = 3;
    tc.learningRate = 0.02;
    nn::Trainer trainer(tc);
    trainer.train(net, ds.train);

    // Offline phase.
    core::DetectorBuilder bld(
        net,
        path::ExtractionConfig::bwCu(
            static_cast<int>(net.weightedNodes().size()), 0.5),
        spec.numClasses);
    bld.profileClassPaths(ds.train, /*max_per_class=*/12);
    {
        Rng rng(0x51AB);
        std::vector<nn::Tensor> clean, noisy;
        for (const auto &s : ds.test) {
            clean.push_back(s.input);
            nn::Tensor x = s.input;
            for (std::size_t e = 0; e < x.size(); ++e)
                x[e] += static_cast<float>(rng.uniform(-0.1, 0.1));
            noisy.push_back(std::move(x));
        }
        classify::FeatureMatrix benign, adversarial;
        bld.featuresBatch(clean, benign);
        bld.featuresBatch(noisy, adversarial);
        bld.fitClassifier(benign, adversarial);
    }
    const core::DetectorModel model = std::move(bld).build();

    // Serving inputs: every test sample plus a perturbed copy.
    Rng rng(0xD37EC7);
    std::vector<nn::Tensor> inputs;
    for (const auto &s : ds.test) {
        inputs.push_back(s.input);
        nn::Tensor x = s.input;
        for (std::size_t e = 0; e < x.size(); ++e)
            x[e] += static_cast<float>(rng.uniform(-0.08, 0.08));
        inputs.push_back(std::move(x));
    }

    core::DetectorSession sess(model);
    std::vector<core::Decision> batch;
    sess.setWideBatch(true);
    sess.detectBatch(inputs, batch); // process-wide pool, wide forward
    std::uint64_t h = 0xcbf29ce484222325ull;
    h = hashDecisions(h, batch);
    const std::uint64_t batch_hash = h;

    // Wide-vs-per-sample cross-check: the fused reference path must
    // produce identical Decisions (the wide forward's bit-identity
    // contract), checked in-process so a violation fails this run
    // directly instead of relying on the CI hash diff.
    std::vector<core::Decision> fused;
    sess.setWideBatch(false);
    sess.detectBatch(inputs, fused);
    std::uint64_t wide_ok = 1;
    std::uint64_t fh = 0xcbf29ce484222325ull;
    if (hashDecisions(fh, fused) != batch_hash)
        wide_ok = 0;
    sess.setWideBatch(true);
    h = fnv1a(h, &wide_ok, sizeof(wide_ok));

    // Sequential pass through the same session.
    std::vector<core::Decision> serial;
    for (const auto &x : inputs)
        serial.push_back(sess.detect(x));
    h = hashDecisions(h, serial);

    // Persistence round trip: the loaded model must serve identically.
    const char *path = "detect_determinism.model";
    std::uint64_t roundtrip_ok = 0;
    if (model.save(path)) {
        core::DetectorModel loaded(
            net,
            path::ExtractionConfig::bwCu(
                static_cast<int>(net.weightedNodes().size()), 0.5),
            spec.numClasses);
        if (loaded.tryLoad(path)) {
            core::DetectorSession ls(loaded);
            std::vector<core::Decision> replayed;
            ls.detectBatch(inputs, replayed);
            h = hashDecisions(h, replayed);
            roundtrip_ok = 1;
        }
    }
    std::remove(path);
    h = fnv1a(h, &roundtrip_ok, sizeof(roundtrip_ok));

    std::printf("threads=%u roundtrip=%llu wide=%llu batch_hash=%016llx "
                "full_hash=%016llx\n",
                globalPool().size(),
                static_cast<unsigned long long>(roundtrip_ok),
                static_cast<unsigned long long>(wide_ok),
                static_cast<unsigned long long>(batch_hash),
                static_cast<unsigned long long>(h));
    if (!roundtrip_ok) {
        std::fprintf(stderr,
                     "FAIL: DetectorModel save->load round trip broke\n");
        return 1;
    }
    if (!wide_ok) {
        std::fprintf(stderr, "FAIL: wide-batch Decisions diverge from the "
                             "fused per-sample path\n");
        return 1;
    }
    return 0;
}
