/**
 * @file
 * Telemetry-determinism probe for CI: builds the same fitted detector
 * as detect_determinism, attaches a TelemetryHub to the serving
 * session, streams mixed clean/perturbed traffic through detectBatch
 * on the process-wide pool, seals windows, and prints the canonical
 * FNV-1a hash of every sealed window's raw aggregates (sketch
 * counters, histogram bins, class tallies). Running it under different
 * PTOLEMY_NUM_THREADS values must print the same hashes — the hub's
 * bit-identity contract: integer counters shard-merged in fixed slot
 * order cannot depend on which thread ingested which record.
 *
 * The run also self-checks the drift semantics end to end: a reference
 * profile is captured from benign traffic, an unshifted window must
 * raise no drift event, and a strongly shifted window must raise one.
 * Exit status 1 on any self-check failure (those are thread-count
 * independent, so the CI hash diff alone would not catch them).
 */

#include <cstdint>
#include <cstdio>
#include <memory>
#include <vector>

#include "core/detector_model.hh"
#include "core/detector_session.hh"
#include "data/synthetic.hh"
#include "nn/common_layers.hh"
#include "nn/conv.hh"
#include "nn/init.hh"
#include "nn/linear.hh"
#include "nn/network.hh"
#include "nn/trainer.hh"
#include "telemetry/hub.hh"
#include "util/rng.hh"
#include "util/thread_pool.hh"

namespace
{

using namespace ptolemy;

nn::Network
makeProbeNet()
{
    nn::Network net("telemetry_probe", nn::mapShape(3, 16, 16));
    net.add(std::make_unique<nn::Conv2d>("conv1", 3, 8, 3, 1, 1));
    net.add(std::make_unique<nn::ReLU>("relu1"));
    net.add(std::make_unique<nn::MaxPool2d>("pool1", 2)); // 8x8
    net.add(std::make_unique<nn::Conv2d>("conv2", 8, 12, 3, 1, 1));
    net.add(std::make_unique<nn::ReLU>("relu2"));
    net.add(std::make_unique<nn::MaxPool2d>("pool2", 2)); // 4x4
    net.add(std::make_unique<nn::Flatten>("flat"));
    net.add(std::make_unique<nn::Linear>("fc", 12 * 4 * 4, 10));
    return net;
}

/** Inputs at perturbation level @p amp (0 = clean). */
std::vector<nn::Tensor>
trafficAt(const nn::Dataset &test, double amp, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<nn::Tensor> xs;
    for (const auto &s : test) {
        nn::Tensor x = s.input;
        if (amp > 0.0)
            for (std::size_t e = 0; e < x.size(); ++e)
                x[e] += static_cast<float>(rng.uniform(-amp, amp));
        xs.push_back(std::move(x));
    }
    return xs;
}

} // namespace

int
main()
{
    data::DatasetSpec spec;
    spec.numClasses = 10;
    spec.trainPerClass = 20;
    spec.testPerClass = 4;
    spec.seed = 42;
    const auto ds = data::makeSyntheticDataset(spec);

    auto net = makeProbeNet();
    nn::heInit(net, 7);
    nn::TrainConfig tc;
    tc.epochs = 3;
    tc.learningRate = 0.02;
    nn::Trainer trainer(tc);
    trainer.train(net, ds.train);

    core::DetectorBuilder bld(
        net,
        path::ExtractionConfig::bwCu(
            static_cast<int>(net.weightedNodes().size()), 0.5),
        spec.numClasses);
    bld.profileClassPaths(ds.train, /*max_per_class=*/12);
    {
        Rng rng(0x51AB);
        std::vector<nn::Tensor> clean, noisy;
        for (const auto &s : ds.test) {
            clean.push_back(s.input);
            nn::Tensor x = s.input;
            for (std::size_t e = 0; e < x.size(); ++e)
                x[e] += static_cast<float>(rng.uniform(-0.1, 0.1));
            noisy.push_back(std::move(x));
        }
        classify::FeatureMatrix benign, adversarial;
        bld.featuresBatch(clean, benign);
        bld.featuresBatch(noisy, adversarial);
        bld.fitClassifier(benign, adversarial);
    }
    const core::DetectorModel model = std::move(bld).build();

    telemetry::TelemetryConfig tcfg;
    tcfg.numClasses = spec.numClasses;
    tcfg.slots = 8; // fixed (≥ any CI thread count): identical shard
                    // geometry no matter the pool width
    tcfg.windowRecords = 1u << 30; // sealed manually per phase
    core::DetectorSession sess(model);
    telemetry::TelemetryHub hub(tcfg);
    sess.attachTelemetry(&hub);

    std::vector<core::Decision> out;

    // Phase 0 — reference profile from benign traffic (3 passes).
    for (int pass = 0; pass < 3; ++pass)
        sess.detectBatch(trafficAt(ds.test, 0.0, 0), out);
    const std::uint64_t refRecords = hub.captureReference();

    // Phase 1 — unshifted window: clean traffic again, must be silent.
    for (int pass = 0; pass < 3; ++pass)
        sess.detectBatch(trafficAt(ds.test, 0.0, 0), out);
    hub.sealWindow();
    const std::uint64_t eventsUnshifted = hub.driftEventCount();

    // Phase 2 — shifted window: heavy perturbation pushes scores
    // toward the adversarial mode the forest was fitted on.
    for (int pass = 0; pass < 3; ++pass)
        sess.detectBatch(trafficAt(ds.test, 0.5, 0xD37EC7 + pass), out);
    hub.sealWindow();
    const std::uint64_t eventsShifted = hub.driftEventCount();

    telemetry::ThresholdProposal prop{};
    const bool proposed = hub.proposeThreshold(prop, 0.5);

    const std::uint64_t h1 = hub.windowHash(1);
    const std::uint64_t h2 = hub.windowHash(2);
    std::uint64_t folded = 1469598103934665603ull;
    folded ^= h1;
    folded *= 1099511628211ull;
    folded ^= h2;
    folded *= 1099511628211ull;

    std::printf(
        "threads=%u slots=%zu ref_records=%llu "
        "events_unshifted=%llu events_shifted=%llu proposed=%d "
        "proposed_threshold=%.6f window1_hash=%016llx "
        "window2_hash=%016llx full_hash=%016llx\n",
        globalPool().size(), hub.numSlots(),
        static_cast<unsigned long long>(refRecords),
        static_cast<unsigned long long>(eventsUnshifted),
        static_cast<unsigned long long>(eventsShifted),
        proposed ? 1 : 0, prop.proposedThreshold,
        static_cast<unsigned long long>(h1),
        static_cast<unsigned long long>(h2),
        static_cast<unsigned long long>(folded));

    if (eventsUnshifted != 0) {
        std::fprintf(stderr,
                     "FAIL: unshifted window raised a drift event\n");
        return 1;
    }
    if (eventsShifted == 0) {
        std::fprintf(stderr,
                     "FAIL: shifted window raised no drift event\n");
        return 1;
    }
    if (!proposed) {
        std::fprintf(stderr,
                     "FAIL: no threshold proposal from sealed window\n");
        return 1;
    }
    return 0;
}
