/**
 * @file
 * Sec. VII-H — additional models: class-path distinctiveness on
 * VGG16/Inception-class models, detection on a DenseNet-class model, and
 * BwCu on a deeper residual network (plays ResNet50).
 *
 * Paper points: VGG16 and Inception-V4 average inter-class similarity
 * 41.5% / 28.8% on ImageNet; DenseNet detection reaches 100% accuracy at
 * 0% FPR; ResNet50 BwCu (0.900) edges out EP (0.898).
 */

#include <cstdio>
#include <iostream>

#include "attack/gradient_attacks.hh"
#include "baselines/ep.hh"
#include "common/workspace.hh"
#include "util/stats.hh"
#include "util/table.hh"

using namespace ptolemy;

int
main()
{
    std::printf("=== Sec. VII-H: larger-model zoo ===\n\n");

    // Class-path similarity on the VGG/Inception-class models.
    Table sim("Inter-class path similarity (theta=0.5) — paper: "
              "VGG16 41.5%, Inception-V4 28.8%");
    sim.header({"model", "avg inter-class similarity", "max"});
    for (const char *name : {"vgg16c10", "inceptionc10"}) {
        auto &b = bench::getBundle(name);
        const int n = static_cast<int>(b.net.weightedNodes().size());
        auto bld = bench::makeBuilder(
            b, path::ExtractionConfig::bwCu(n, 0.5));
        const auto &store = bld->model().classPaths();
        std::vector<double> sims;
        for (int a = 0; a < b.numClasses; ++a)
            for (int c = a + 1; c < b.numClasses; ++c)
                sims.push_back(store.interClassSimilarity(a, c));
        sim.row({name, fmtPct(mean(sims)), fmtPct(maxOf(sims))});
    }
    sim.print(std::cout);

    // DenseNet detection accuracy / FPR at the 0.5 operating point.
    {
        auto &b = bench::getBundle("densenetc10");
        const int n = static_cast<int>(b.net.weightedNodes().size());
        auto bld = bench::makeBuilder(
            b, path::ExtractionConfig::bwCu(n, 0.5));
        core::DetectorSession sess(bld->model());
        attack::Bim bim;
        auto pairs = bench::getPairs(b, bim, 80);
        const auto scored = core::fitAndScore(*bld, sess, pairs, 0.5);
        std::vector<double> scores;
        std::vector<int> labels;
        for (const auto &s : scored.heldOut) {
            scores.push_back(s.score);
            labels.push_back(s.label);
        }
        const auto counts = countsAtThreshold(scores, labels, 0.5);
        Table d("DenseNet-class detection (BIM) — paper: 100% detection "
                "accuracy, 0% FPR");
        d.header({"detection accuracy", "FPR", "AUC"});
        d.row({fmtPct(counts.accuracy()), fmtPct(counts.fpr()),
               fmt(scored.auc, 3)});
        d.print(std::cout);
    }

    // Deeper residual net (plays ResNet50): BwCu vs EP.
    {
        auto &b = bench::getBundle("resnet26c10");
        const int n = static_cast<int>(b.net.weightedNodes().size());
        auto bld = bench::makeBuilder(
            b, path::ExtractionConfig::bwCu(n, 0.5));
        core::DetectorSession sess(bld->model());
        attack::Fgsm fgsm;
        auto pairs = bench::getPairs(b, fgsm, 80);
        const double ours = core::fitAndScore(*bld, sess, pairs, 0.5).auc;
        baselines::EpBaseline ep(b.net, b.numClasses);
        ep.profile(b.net, b.data.train);
        const double ep_auc =
            baselines::evaluateBaselineAuc(ep, b.net, pairs);
        Table r("Deeper residual net (plays ResNet50) — paper: BwCu "
                "0.900 vs EP 0.898");
        r.header({"BwCu AUC", "EP AUC"});
        r.row({fmt(ours, 3), fmt(ep_auc, 3)});
        r.print(std::cout);
    }

    // Hardware co-design across the zoo: every Sec. VII-H model goes
    // through the compiler (profiled BwCu trace at theta=0.5) and the
    // cycle-level simulator, so the larger/denser topologies exercise
    // the full program-emission path, not just detection accuracy.
    {
        Table c("Zoo models through the compiler (BwCu theta=0.5, "
                "baseline hardware)");
        c.header({"model", "instrs", "code bytes", "detect cycles",
                  "latency vs inf"});
        for (const char *name : {"vgg16c10", "inceptionc10", "densenetc10",
                                 "resnet26c10"}) {
            auto &b = bench::getBundle(name);
            const int n = static_cast<int>(b.net.weightedNodes().size());
            const auto cfg = path::ExtractionConfig::bwCu(n, 0.5);
            const auto trace = bench::profileTrace(b, cfg);
            compiler::Compiler comp(b.net, cfg);
            const auto prog = comp.compile(trace);
            const auto cost = bench::costOfTrace(b, cfg, trace);
            c.row({name, std::to_string(prog.size()),
                   std::to_string(prog.codeBytes()),
                   std::to_string(cost.detection.cycles),
                   fmtX(cost.latencyXNoCls)});
        }
        c.print(std::cout);
    }
    return 0;
}
