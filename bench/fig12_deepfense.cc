/**
 * @file
 * Fig. 12 — comparison with DeepFense (DFL/DFM/DFH) on the 10-class
 * dataset (plays ResNet18 @ CIFAR-10).
 *
 * Paper shape: every Ptolemy variant is more accurate than every
 * DeepFense variant (FwAb beats even DFH by ~0.11 on average), and
 * BwAb/FwAb are also cheaper than DFL, the lightest DeepFense setup.
 * DeepFense cost scales with the number of redundant defender modules.
 */

#include <cstdio>
#include <iostream>

#include "attack/suite.hh"
#include "baselines/deepfense.hh"
#include "common/workspace.hh"
#include "path/trace.hh"
#include "util/stats.hh"
#include "util/table.hh"

using namespace ptolemy;

int
main()
{
    std::printf("=== Fig. 12: DeepFense comparison (ResNet18-class @ "
                "10-class dataset) ===\n\n");
    auto &b = bench::getBundle("resnet18c10");
    auto attacks = attack::makeStandardAttacks();
    const auto variants = bench::makeVariants(b);

    std::vector<std::vector<core::DetectionPair>> pairs;
    for (auto &atk : attacks)
        pairs.push_back(bench::getPairs(b, *atk, 60));

    Table acc("Fig. 12a accuracy (avg over 5 attacks)");
    acc.header({"scheme", "avg AUC", "min", "max"});
    Table cost("Fig. 12b latency/energy vs inference");
    cost.header({"scheme", "Latency", "Energy"});

    auto eval_variant = [&](const std::string &name,
                            const path::ExtractionConfig &cfg) {
        auto bld = bench::makeBuilder(b, cfg);
        core::DetectorSession sess(bld->model());
        std::vector<double> aucs;
        for (std::size_t a = 0; a < attacks.size(); ++a)
            aucs.push_back(core::fitAndScore(*bld, sess, pairs[a], 0.5).auc);
        acc.row({name, fmt(mean(aucs), 3), fmt(minOf(aucs), 3),
                 fmt(maxOf(aucs), 3)});
        const auto c = bench::costOf(b, cfg);
        cost.row({name, fmtX(c.latencyXNoCls), fmtX(c.energyXNoCls)});
    };
    eval_variant("BwCu", variants.bwCu);
    eval_variant("BwAb", variants.bwAb);
    eval_variant("FwAb", variants.fwAb);
    eval_variant("Hybrid", variants.hybrid);

    const std::size_t net_macs = path::networkMacs(b.net);
    for (int n_def : {1, 8, 16}) {
        baselines::DeepFenseBaseline df(b.net, n_def);
        df.profile(b.net, b.data.train);
        std::vector<double> aucs;
        for (std::size_t a = 0; a < attacks.size(); ++a)
            aucs.push_back(
                baselines::evaluateBaselineAuc(df, b.net, pairs[a]));
        acc.row({df.name(), fmt(mean(aucs), 3), fmt(minOf(aucs), 3),
                 fmt(maxOf(aucs), 3)});
        // DeepFense cost: the redundant defender modules run as extra
        // dense layers on the same accelerator.
        const double overhead =
            1.0 + static_cast<double>(df.extraMacs()) / net_macs;
        cost.row({df.name(), fmtX(overhead), fmtX(overhead)});
    }

    acc.print(std::cout);
    std::printf("\n");
    cost.print(std::cout);
    return 0;
}
