/**
 * @file
 * Fig. 5 — inter-class path similarity matrices.
 *
 * Paper: 10 sampled ImageNet classes on AlexNet average 36.2% similarity
 * (max 38.2%, p90 36.6%); the 10 CIFAR-10 classes on ResNet18 average
 * 61.2% — CIFAR-class datasets have fewer, more-similar classes, so their
 * class paths overlap more. Expected reproduction shape: class paths
 * clearly distinct (diagonal 1.0, off-diagonal well below), and the
 * 100-class model's 10-sample similarity at or below the 10-class
 * model's.
 */

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <vector>

#include "common/workspace.hh"
#include "path/extractor.hh"
#include "util/stats.hh"
#include "util/table.hh"

using namespace ptolemy;

namespace
{

/** Build class paths at theta = 0.5 and print the similarity stats. */
void
runModel(const char *bundle_name, const char *paper_role, int sample_classes)
{
    auto &b = bench::getBundle(bundle_name);
    const int n = static_cast<int>(b.net.weightedNodes().size());
    auto bld = bench::makeBuilder(
        b, path::ExtractionConfig::bwCu(n, 0.5), 100);
    const auto &store = bld->model().classPaths();

    // Sample evenly-spaced classes (the paper samples 10 of 1000),
    // skipping classes whose canary path is empty because the scaled
    // model never predicts them correctly — the paper's sampled ImageNet
    // classes are all well-trained.
    std::vector<std::size_t> populated;
    for (std::size_t c = 0; c < store.numClasses(); ++c)
        if (store.classPath(c).popcount() > 0)
            populated.push_back(c);
    std::vector<std::size_t> classes;
    const std::size_t stride = std::max<std::size_t>(
        1, populated.size() / sample_classes);
    for (std::size_t i = 0; i < populated.size() &&
         classes.size() < static_cast<std::size_t>(sample_classes);
         i += stride)
        classes.push_back(populated[i]);

    Table t(std::string("Fig. 5 class-path similarity, ") + bundle_name +
            " (plays " + paper_role + "), theta=0.5");
    std::vector<std::string> header{"class"};
    for (std::size_t c : classes)
        header.push_back(std::to_string(c));
    t.header(header);

    std::vector<double> off_diagonal;
    for (std::size_t a : classes) {
        std::vector<std::string> row{std::to_string(a)};
        for (std::size_t c : classes) {
            const double s = store.interClassSimilarity(a, c);
            row.push_back(fmt(s, 2));
            if (a != c)
                off_diagonal.push_back(s);
        }
        t.row(row);
    }
    t.print(std::cout);
    std::printf("  avg inter-class similarity: %.3f  (max %.3f, "
                "90-percentile %.3f)\n\n",
                mean(off_diagonal), maxOf(off_diagonal),
                percentile(off_diagonal, 90));
}

} // namespace

int
main()
{
    std::printf("=== Fig. 5: class paths are distinctive ===\n"
                "Paper reference points: AlexNet@ImageNet avg 0.362, "
                "ResNet18@CIFAR-10 avg 0.612.\n\n");
    runModel("alexnet100", "AlexNet @ ImageNet", 10);
    runModel("resnet18c10", "ResNet18 @ CIFAR-10", 10);

    // Paper Sec. III-A also normalizes across datasets: ResNet on the
    // many-class dataset should look like AlexNet on it (class count,
    // not architecture, drives the similarity level).
    runModel("resnet18c100", "ResNet @ many-class control", 10);
    return 0;
}
