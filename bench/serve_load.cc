/**
 * @file
 * Serving-tier load generator and soak harness.
 *
 * Default mode sweeps offered QPS across {0.5x, 1x, 2x} of the
 * measured closed-loop capacity and records per-point p50/p95/p99
 * latency, delivered throughput and shed rate into a "serve" block of
 * BENCH_micro.json (spliced into the perf_smoke artifact when it
 * already exists, so one file carries the whole perf trajectory). The
 * measured window is asserted allocation-free: a warmed server +
 * request slab must serve an open-loop flood with zero heap
 * allocations, the same steady-state discipline perf_smoke enforces on
 * the kernels below it.
 *
 * --soak mode is the CI robustness leg (run under ThreadSanitizer):
 * phase 1 offers comfortable load with no faults and requires ZERO
 * sheds, deadline misses and errors; phase 2 turns on the full
 * ServeFaultPlan campaign (stalled batches, poisoned requests, hot
 * swaps with injected load failures) under concurrent retrying clients
 * and requires conservation — every submitted request resolved to
 * exactly one typed status — plus bit-identical kOk decisions across
 * model swaps. An internal watchdog hard-exits if the tier deadlocks.
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <new>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/detector_model.hh"
#include "core/detector_session.hh"
#include "core/fault_injection.hh"
#include "data/synthetic.hh"
#include "nn/common_layers.hh"
#include "nn/conv.hh"
#include "nn/init.hh"
#include "nn/linear.hh"
#include "nn/network.hh"
#include "nn/trainer.hh"
#include "serve/client.hh"
#include "serve/server.hh"
#include "telemetry/hub.hh"
#include "telemetry/sketch.hh"
#include "util/rng.hh"
#include "util/thread_pool.hh"

namespace
{
std::atomic<std::size_t> g_allocs{0};
} // namespace

// Count every heap allocation in the process so the measured serving
// window can be shown to perform none.
void *
operator new(std::size_t n)
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(n ? n : 1))
        return p;
    throw std::bad_alloc();
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace
{

using namespace ptolemy;
using serve::Clock;

nn::Network
makeServeNet()
{
    nn::Network net("serve_probe", nn::mapShape(3, 16, 16));
    net.add(std::make_unique<nn::Conv2d>("conv1", 3, 8, 3, 1, 1));
    net.add(std::make_unique<nn::ReLU>("relu1"));
    net.add(std::make_unique<nn::MaxPool2d>("pool1", 2)); // 8x8
    net.add(std::make_unique<nn::Conv2d>("conv2", 8, 12, 3, 1, 1));
    net.add(std::make_unique<nn::ReLU>("relu2"));
    net.add(std::make_unique<nn::MaxPool2d>("pool2", 2)); // 4x4
    net.add(std::make_unique<nn::Flatten>("flat"));
    net.add(std::make_unique<nn::Linear>("fc", 12 * 4 * 4, 10));
    return net;
}

/** Trained net + fitted model + serving inputs for the generator. */
struct ServeWorld
{
    nn::Network net;
    core::DetectorModel model;
    std::vector<nn::Tensor> inputs;

    ServeWorld() : net(makeServeNet()), model(buildModel(net))
    {
        Rng rng(0xD37EC7);
        data::DatasetSpec spec;
        spec.numClasses = 10;
        spec.trainPerClass = 2;
        spec.testPerClass = 4;
        spec.seed = 43;
        const auto probe = data::makeSyntheticDataset(spec);
        for (const auto &s : probe.test) {
            inputs.push_back(s.input);
            nn::Tensor x = s.input;
            for (std::size_t e = 0; e < x.size(); ++e)
                x[e] += static_cast<float>(rng.uniform(-0.08, 0.08));
            inputs.push_back(std::move(x));
        }
    }

    static core::DetectorModel
    buildModel(nn::Network &net)
    {
        data::DatasetSpec spec;
        spec.numClasses = 10;
        spec.trainPerClass = 20;
        spec.testPerClass = 4;
        spec.seed = 42;
        const auto ds = data::makeSyntheticDataset(spec);
        nn::heInit(net, 7);
        nn::TrainConfig tc;
        tc.epochs = 3;
        tc.learningRate = 0.02;
        nn::Trainer trainer(tc);
        trainer.train(net, ds.train);

        core::DetectorBuilder bld(
            net,
            path::ExtractionConfig::bwCu(
                static_cast<int>(net.weightedNodes().size()), 0.5),
            spec.numClasses);
        bld.profileClassPaths(ds.train, 12);
        Rng rng(0x51AB);
        std::vector<nn::Tensor> clean, noisy;
        for (const auto &s : ds.test) {
            clean.push_back(s.input);
            nn::Tensor x = s.input;
            for (std::size_t e = 0; e < x.size(); ++e)
                x[e] += static_cast<float>(rng.uniform(-0.1, 0.1));
            noisy.push_back(std::move(x));
        }
        classify::FeatureMatrix benign, adversarial;
        bld.featuresBatch(clean, benign);
        bld.featuresBatch(noisy, adversarial);
        bld.fitClassifier(benign, adversarial);
        return std::move(bld).build();
    }
};

/** Closed-loop fused-batch capacity: the ceiling the sweep is scaled
 *  against. */
double
measureCapacity(ServeWorld &w)
{
    core::DetectorSession sess(w.model);
    std::vector<const nn::Tensor *> xptrs;
    for (const auto &x : w.inputs)
        xptrs.push_back(&x);
    std::vector<core::Decision> out(xptrs.size());
    const std::span<const nn::Tensor *const> xs(xptrs.data(),
                                                xptrs.size());
    const std::span<core::Decision> os(out.data(), out.size());
    sess.detectBatch(xs, os); // warm
    sess.detectBatch(xs, os);
    const auto start = Clock::now();
    std::size_t served = 0;
    double elapsed = 0.0;
    do {
        sess.detectBatch(xs, os);
        served += xptrs.size();
        elapsed =
            std::chrono::duration<double>(Clock::now() - start).count();
    } while (elapsed < 0.3);
    return static_cast<double>(served) / elapsed;
}

struct SweepPoint
{
    double offeredQps = 0.0;
    std::size_t submitted = 0;
    std::size_t ok = 0;
    std::size_t shedCount = 0;
    double throughputPerSec = 0.0;
    double shedRate = 0.0;
    double p50 = 0.0, p95 = 0.0, p99 = 0.0; ///< µs, kOk only
    std::size_t allocs = 0; ///< heap allocations in the measured window
};

double
percentile(std::vector<double> &v, double p)
{
    if (v.empty())
        return 0.0;
    const auto k = static_cast<std::size_t>(
        p * static_cast<double>(v.size() - 1) + 0.5);
    std::nth_element(v.begin(),
                     v.begin() + static_cast<std::ptrdiff_t>(k), v.end());
    return v[k];
}

/**
 * One open-loop point: pace @p total submissions at @p qps through a
 * reused request slab (a slot is re-armed only after its previous
 * flight resolved, so in-flight never exceeds the slab). The measured
 * window must be allocation-free.
 */
SweepPoint
runPoint(serve::DetectorServer &server, ServeWorld &w, double qps,
         std::size_t total, std::vector<serve::ServeRequest> &slab,
         std::vector<double> &latencies)
{
    SweepPoint pt;
    pt.offeredQps = qps;
    latencies.clear();

    const auto interval = std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(1.0 / qps));
    const auto t0 = Clock::now();
    auto next = t0;
    const std::size_t before = g_allocs.load(std::memory_order_relaxed);
    for (std::size_t k = 0; k < total; ++k) {
        // Pace: coarse sleep, fine spin (sub-ms precision matters at
        // the top of the sweep).
        for (;;) {
            const auto now = Clock::now();
            if (now >= next)
                break;
            if (next - now > std::chrono::microseconds(500))
                std::this_thread::sleep_for(next - now -
                                            std::chrono::microseconds(200));
        }
        next += interval;

        serve::ServeRequest &r = slab[k % slab.size()];
        // Harvest the slot's previous flight before re-arming it.
        if (k >= slab.size()) {
            if (server.wait(r) == serve::RequestStatus::kOk)
                latencies.push_back(r.latencyMicros());
        }
        r.reset(w.inputs[k % w.inputs.size()]);
        ++pt.submitted;
        server.submit(r); // shed resolves synchronously; harvested above
    }
    // Drain the tail.
    const std::size_t tail = std::min(slab.size(), total);
    for (std::size_t i = 0; i < tail; ++i) {
        serve::ServeRequest &r = slab[(total - tail + i) % slab.size()];
        if (server.wait(r) == serve::RequestStatus::kOk)
            latencies.push_back(r.latencyMicros());
    }
    pt.allocs = g_allocs.load(std::memory_order_relaxed) - before;
    const double elapsed =
        std::chrono::duration<double>(Clock::now() - t0).count();

    pt.ok = latencies.size();
    pt.shedCount = pt.submitted - pt.ok; // no deadlines/faults in sweep
    pt.throughputPerSec = static_cast<double>(pt.ok) / elapsed;
    pt.shedRate = static_cast<double>(pt.shedCount) /
                  static_cast<double>(pt.submitted);
    pt.p50 = percentile(latencies, 0.50);
    pt.p95 = percentile(latencies, 0.95);
    pt.p99 = percentile(latencies, 0.99);
    return pt;
}

/** Hub sized for the serve probe (the configuration the README's
 *  sizing example describes). */
telemetry::TelemetryConfig
probeTelemetryConfig()
{
    telemetry::TelemetryConfig tcfg;
    tcfg.numClasses = 10;
    tcfg.slots = 8; // ≥ any pool width used here
    tcfg.windowRecords = 1u << 30; // manual seal
    return tcfg;
}

/** Closed-loop detectBatch capacity over @p secs (the A/B primitive
 *  for the telemetry overhead ratio). */
double
capacityFor(core::DetectorSession &sess,
            std::span<const nn::Tensor *const> xs,
            std::span<core::Decision> os, double secs)
{
    const auto start = Clock::now();
    std::size_t served = 0;
    double elapsed = 0.0;
    do {
        sess.detectBatch(xs, os);
        served += xs.size();
        elapsed =
            std::chrono::duration<double>(Clock::now() - start).count();
    } while (elapsed < secs);
    return static_cast<double>(served) / elapsed;
}

/**
 * Telemetry micro-bench: end-to-end ingest overhead on the serve probe
 * (interleaved attached/plain A/B so both sides share cache and
 * frequency state), direct ingest + window-seal cost, and the
 * error-bound-derived memory footprint. The measured steady state is
 * asserted allocation-free, and the attached/plain ratio is asserted
 * within the ≤2% ingest budget. Appends the "telemetry" block to
 * @p blocks; returns non-zero on any assertion failure.
 */
int
runTelemetryBench(ServeWorld &w, std::ostringstream &blocks)
{
    telemetry::TelemetryConfig tcfg = probeTelemetryConfig();
    telemetry::TelemetryHub hub(tcfg);
    core::DetectorSession sess(w.model);
    std::vector<const nn::Tensor *> xptrs;
    for (const auto &x : w.inputs)
        xptrs.push_back(&x);
    std::vector<core::Decision> out(xptrs.size());
    const std::span<const nn::Tensor *const> xs(xptrs.data(),
                                                xptrs.size());
    const std::span<core::Decision> os(out.data(), out.size());

    // Warm both configurations.
    sess.attachTelemetry(&hub);
    sess.detectBatch(xs, os);
    sess.attachTelemetry(nullptr);
    sess.detectBatch(xs, os);

    // Interleaved A/B, best-of-5 pairs: noise only ever lowers a
    // measured capacity, so the max per-pair ratio is the cleanest
    // estimate of the true attached/plain throughput ratio.
    double ratio = 0.0;
    double attached_best = 0.0, plain_best = 0.0;
    for (int trial = 0; trial < 5; ++trial) {
        sess.attachTelemetry(&hub);
        const double attached = capacityFor(sess, xs, os, 0.12);
        sess.attachTelemetry(nullptr);
        const double plain = capacityFor(sess, xs, os, 0.12);
        ratio = std::max(ratio, attached / plain);
        attached_best = std::max(attached_best, attached);
        plain_best = std::max(plain_best, plain);
    }
    hub.sealWindow();

    // Direct ingest cost: one shard, a path at realistic density (the
    // extraction layout's bit space, every 4th bit set).
    const std::size_t pathBits =
        w.model.extractor().layout().totalBits();
    BitVector path(pathBits);
    for (std::size_t b = 0; b < pathBits; b += 4)
        path.set(b);
    std::size_t ingested = 0;
    double ingest_secs = 0.0;
    {
        const auto start = Clock::now();
        do {
            for (int i = 0; i < 1000; ++i)
                hub.ingest(0, 0.25 + 0.0001 * (i % 100),
                           static_cast<std::size_t>(i % 10), false, 0.2,
                           &path);
            ingested += 1000;
            ingest_secs = std::chrono::duration<double>(Clock::now() -
                                                        start)
                              .count();
        } while (ingest_secs < 0.2);
    }
    const double ingest_ns =
        1e9 * ingest_secs / static_cast<double>(ingested);
    hub.sealWindow();

    // Window seal cost + the zero-allocation contract over full
    // ingest->seal->read cycles (warmed above; reference captured so
    // the proposal path runs too).
    hub.captureReference();
    std::vector<telemetry::DriftEvent> evs;
    evs.reserve(tcfg.eventRing);
    telemetry::WindowSummary ws;
    telemetry::ThresholdProposal prop;
    const std::size_t kWindow = 1024;
    double seal_secs = 0.0;
    std::size_t sealed = 0;
    const std::size_t allocs_before =
        g_allocs.load(std::memory_order_relaxed);
    for (int round = 0; round < 20; ++round) {
        for (std::size_t i = 0; i < kWindow; ++i)
            hub.ingest(static_cast<unsigned>(i % 8),
                       0.25 + 0.0001 * (i % 100),
                       static_cast<std::size_t>(i % 10), false, 0.2,
                       &path);
        const auto s0 = Clock::now();
        hub.sealWindow();
        seal_secs +=
            std::chrono::duration<double>(Clock::now() - s0).count();
        ++sealed;
        hub.driftEvents(evs);
        hub.latestWindow(ws);
        hub.proposeThreshold(prop);
    }
    const std::size_t alloc_count =
        g_allocs.load(std::memory_order_relaxed) - allocs_before;
    const double seal_us =
        1e6 * seal_secs / static_cast<double>(sealed);

    const telemetry::CountMinSketch probe(tcfg.bound, tcfg.seed);
    std::printf(
        "telemetry: attached_vs_plain %.4f (attached %.0f/s, plain "
        "%.0f/s), ingest %.0f ns/record, seal %.1f us/window, sketch "
        "%zux%zu = %zu bytes, hub %zu bytes, allocs %zu\n",
        ratio, attached_best, plain_best, ingest_ns, seal_us,
        probe.depth(), probe.width(), probe.memoryBytes(),
        hub.memoryBytes(), alloc_count);

    blocks << "  \"telemetry\": {\n"
           << "    \"epsilon\": " << tcfg.bound.epsilon << ",\n"
           << "    \"delta\": " << tcfg.bound.delta << ",\n"
           << "    \"attached_vs_plain_speedup\": " << ratio << ",\n"
           << "    \"ingest_per_sec\": "
           << (1e9 / (ingest_ns > 0.0 ? ingest_ns : 1.0)) << ",\n"
           << "    \"ingest_ns_per_record\": " << ingest_ns << ",\n"
           << "    \"seal_us_per_window\": " << seal_us << ",\n"
           << "    \"allocs_per_window\": "
           << (alloc_count / (sealed ? sealed : 1)) << ",\n"
           << "    \"mem\": { \"sketch_width\": " << probe.width()
           << ", \"sketch_depth\": " << probe.depth()
           << ", \"sketch_bytes\": " << probe.memoryBytes()
           << ", \"hub_bytes\": " << hub.memoryBytes() << " }\n"
           << "  }";

    int rc = 0;
    if (alloc_count != 0) {
        std::cerr << "FAIL: telemetry steady state performed "
                  << alloc_count << " heap allocations (expected 0)\n";
        rc = 1;
    }
    if (ratio < 0.98) {
        std::cerr << "FAIL: telemetry ingest costs "
                  << 100.0 * (1.0 - ratio)
                  << "% of serve-probe throughput (budget 2%)\n";
        rc = 1;
    }
    return rc;
}

/**
 * Splice a "serve" JSON block into @p out_path: appended as a last
 * member when the perf_smoke artifact already exists, else written as
 * a fresh document.
 */
bool
writeServeBlock(const std::string &out_path, const std::string &block)
{
    std::string existing;
    {
        std::ifstream is(out_path);
        if (is)
            existing.assign(std::istreambuf_iterator<char>(is),
                            std::istreambuf_iterator<char>());
    }
    std::string prefix;
    const std::size_t close = existing.rfind('}');
    if (close != std::string::npos && existing.find('{') < close) {
        prefix = existing.substr(0, close);
        while (!prefix.empty() &&
               (prefix.back() == '\n' || prefix.back() == ' '))
            prefix.pop_back();
        prefix += ",\n";
    } else {
        prefix = "{\n"; // fresh document (sweep ran before perf_smoke)
    }
    std::ofstream os(out_path, std::ios::trunc);
    if (!os)
        return false;
    os << prefix << block << "\n}\n";
    return os.good();
}

int
runSweep(ServeWorld &w, const std::string &out_path)
{
    const double capacity = measureCapacity(w);
    std::printf("closed-loop capacity: %.0f detections/s\n", capacity);

    serve::ServeConfig cfg;
    cfg.queueDepth = 64;
    cfg.maxBatch = 16;
    cfg.batchWindowMicros = 200;
    serve::DetectorServer server(w.model, cfg);

    // Request slab, reused across every point. The warm-up pass below
    // routes every slot through a served decision once so its Decision
    // buffers reach steady-state capacity before anything is measured.
    std::vector<serve::ServeRequest> slab(2 * cfg.queueDepth);
    std::vector<double> latencies;
    latencies.reserve(1 << 16);
    for (std::size_t i = 0; i < slab.size(); ++i) {
        slab[i].reset(w.inputs[i % w.inputs.size()]);
        server.submit(slab[i]);
        if (server.wait(slab[i]) != serve::RequestStatus::kOk) {
            std::cerr << "FAIL: warm-up request " << i << " ended "
                      << requestStatusName(slab[i].status.load()) << "\n";
            return 1;
        }
    }
    // Closed-loop warm-up only ever formed single-request batches;
    // flood a few full bursts so every batch-width-dependent buffer
    // (the dispatcher's maxBatch result slots included) reaches its
    // high-water mark too.
    for (int round = 0; round < 3; ++round) {
        for (auto &r : slab) {
            r.reset(w.inputs[r.seq % w.inputs.size()]);
            server.submit(r);
        }
        for (auto &r : slab)
            server.wait(r);
    }

    const double fractions[] = {0.5, 1.0, 2.0};
    std::vector<SweepPoint> points;
    for (const double f : fractions) {
        const double qps = f * capacity;
        const auto total = static_cast<std::size_t>(
            std::clamp(qps * 0.4, 200.0, 6000.0));
        points.push_back(runPoint(server, w, qps, total, slab, latencies));
        const auto &pt = points.back();
        std::printf("offered %.0f/s (%.1fx): served %.0f/s, shed %.1f%%, "
                    "p50 %.0fus p95 %.0fus p99 %.0fus, allocs %zu\n",
                    pt.offeredQps, f, pt.throughputPerSec,
                    100.0 * pt.shedRate, pt.p50, pt.p95, pt.p99,
                    pt.allocs);
    }
    server.stop();
    const auto st = server.stats();
    if (!st.conserved()) {
        std::cerr << "FAIL: request conservation broken (submitted="
                  << st.submitted << " resolved=" << st.resolved()
                  << ")\n";
        return 1;
    }

    std::size_t alloc_total = 0;
    for (const auto &pt : points)
        alloc_total += pt.allocs;

    std::ostringstream block;
    block << "  \"serve\": {\n"
          << "    \"model\": \"2conv+1fc on 3x16x16, BwCu theta=0.5\",\n"
          << "    \"queue_depth\": " << cfg.queueDepth << ",\n"
          << "    \"max_batch\": " << cfg.maxBatch << ",\n"
          << "    \"batch_window_us\": " << cfg.batchWindowMicros << ",\n"
          << "    \"capacity_per_sec\": " << capacity << ",\n"
          << "    \"steady_state_allocs\": " << alloc_total << ",\n"
          << "    \"points\": [\n";
    for (std::size_t i = 0; i < points.size(); ++i) {
        const auto &pt = points[i];
        block << "      { \"offered_qps\": " << pt.offeredQps
              << ", \"submitted\": " << pt.submitted
              << ", \"throughput_per_sec\": " << pt.throughputPerSec
              << ", \"shed_rate\": " << pt.shedRate
              << ", \"p50_us\": " << pt.p50
              << ", \"p95_us\": " << pt.p95
              << ", \"p99_us\": " << pt.p99 << " }"
              << (i + 1 < points.size() ? "," : "") << "\n";
    }
    block << "    ]\n  },\n";

    const int telemetry_rc = runTelemetryBench(w, block);

    if (!writeServeBlock(out_path, block.str())) {
        std::cerr << "FAIL: cannot write " << out_path << "\n";
        return 1;
    }
    std::printf("wrote serve + telemetry blocks to %s\n",
                out_path.c_str());

    if (alloc_total != 0) {
        std::cerr << "FAIL: measured serving windows performed "
                  << alloc_total << " heap allocations (expected 0)\n";
        return 1;
    }
    return telemetry_rc;
}

/**
 * Soak: shed-free tier under comfortable load, then the full fault
 * campaign under concurrent retrying clients. Run under TSan in CI.
 */
int
runSoak(ServeWorld &w)
{
    // Watchdog: the whole point of the soak is that nothing ever
    // hangs; if it does, fail loudly instead of eating the CI timeout.
    std::atomic<bool> done{false};
    std::thread watchdog([&] {
        const auto deadline =
            Clock::now() + std::chrono::seconds(240);
        while (!done.load(std::memory_order_acquire)) {
            if (Clock::now() > deadline) {
                std::fprintf(stderr,
                             "FAIL: soak watchdog fired (serving tier "
                             "hung)\n");
                std::_Exit(7);
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(100));
        }
    });

    // Reference decisions: every kOk must match these bitwise, before,
    // during and after hot swaps (the swap artifact is this same
    // model).
    std::vector<core::Decision> ref;
    {
        core::DetectorSession sess(w.model);
        for (const auto &x : w.inputs)
            ref.push_back(sess.detect(x));
    }
    const std::string swap_path = "serve_soak_swap.model";
    if (!w.model.save(swap_path)) {
        std::cerr << "FAIL: cannot save swap artifact\n";
        return 1;
    }
    int failures = 0;
    auto check_ok_decision = [&](const serve::ServeRequest &r,
                                 std::size_t input_idx) {
        const auto &a = r.decision;
        const auto &b = ref[input_idx];
        if (a.score != b.score || a.predictedClass != b.predictedClass ||
            a.adversarial != b.adversarial) {
            ++failures;
            std::cerr << "FAIL: kOk decision diverged on input "
                      << input_idx << "\n";
        }
    };

    // ---- Phase 1: comfortable load, no faults: zero sheds, zero
    // deadline misses, zero errors.
    {
        serve::ServeConfig cfg;
        cfg.queueDepth = 64;
        cfg.maxBatch = 8;
        serve::DetectorServer server(w.model, cfg);
        serve::ServeRequest req;
        for (int k = 0; k < 300; ++k) {
            const std::size_t idx = k % w.inputs.size();
            req.reset(w.inputs[idx]);
            server.submit(req);
            if (server.wait(req) != serve::RequestStatus::kOk) {
                ++failures;
                std::cerr << "FAIL: shed-free phase request " << k
                          << " ended "
                          << requestStatusName(req.status.load()) << "\n";
            } else {
                check_ok_decision(req, idx);
            }
        }
        server.stop();
        const auto st = server.stats();
        if (st.shed != 0 || st.deadlineExceeded != 0 || st.errors != 0 ||
            !st.conserved()) {
            ++failures;
            std::cerr << "FAIL: shed-free phase counters: shed="
                      << st.shed << " ddl=" << st.deadlineExceeded
                      << " err=" << st.errors << " conserved="
                      << st.conserved() << "\n";
        }
        std::printf("soak phase 1: 300/300 ok, shed-free\n");
    }

    // ---- Phase 2: full fault campaign under concurrent clients.
    {
        core::ServeFaultPlan plan;
        plan.delayEveryNthBatch = 4;
        plan.batchDelayMicros = 2000;
        plan.poisonEveryNthRequest = 9;
        serve::ServeConfig cfg;
        cfg.queueDepth = 8;
        cfg.maxBatch = 4;
        cfg.batchWindowMicros = 100;
        cfg.defaultDeadlineMicros = 100000;
        serve::DetectorServer server(w.model, cfg, &plan);

        constexpr int kClients = 2;
        constexpr int kPerClient = 200;
        std::atomic<std::size_t> resolved{0}, ok{0};
        auto client = [&](int tid) {
            serve::RetryClient::Options ropt;
            ropt.maxAttempts = 3;
            ropt.initialBackoffMicros = 200;
            serve::RetryClient rc(server, ropt);
            serve::ServeRequest req;
            for (int i = 0; i < kPerClient; ++i) {
                const std::size_t idx =
                    static_cast<std::size_t>(tid + i) % w.inputs.size();
                const serve::RequestStatus s =
                    rc.detect(req, w.inputs[idx]);
                if (!serve::isResolved(s)) {
                    ++failures;
                    std::cerr << "FAIL: campaign request not resolved\n";
                    continue;
                }
                resolved.fetch_add(1);
                if (s == serve::RequestStatus::kOk) {
                    ok.fetch_add(1);
                    check_ok_decision(req, idx);
                }
            }
        };
        std::vector<std::thread> clients;
        for (int t = 0; t < kClients; ++t)
            clients.emplace_back(client, t);
        for (int s = 0; s < 6; ++s) {
            if (s % 3 == 2)
                plan.failNextSwaps.store(1);
            server.swapModel(swap_path);
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
        for (auto &t : clients)
            t.join();
        server.stop();

        const auto st = server.stats();
        if (!st.conserved()) {
            ++failures;
            std::cerr << "FAIL: campaign conservation broken (submitted="
                      << st.submitted << " resolved=" << st.resolved()
                      << ")\n";
        }
        if (resolved.load() !=
            static_cast<std::size_t>(kClients) * kPerClient) {
            ++failures;
            std::cerr << "FAIL: lost client requests\n";
        }
        if (ok.load() == 0) {
            ++failures;
            std::cerr << "FAIL: campaign served nothing\n";
        }
        std::printf(
            "soak phase 2: %zu/%d resolved (%zu ok), server: ok=%llu "
            "shed=%llu ddl=%llu err=%llu swaps=%llu failed_swaps=%llu "
            "batches=%llu | injected: delays=%zu poisons=%zu "
            "swap_faults=%zu\n",
            resolved.load(), kClients * kPerClient, ok.load(),
            static_cast<unsigned long long>(st.ok),
            static_cast<unsigned long long>(st.shed),
            static_cast<unsigned long long>(st.deadlineExceeded),
            static_cast<unsigned long long>(st.errors),
            static_cast<unsigned long long>(st.swaps),
            static_cast<unsigned long long>(st.failedSwaps),
            static_cast<unsigned long long>(st.batches),
            plan.delaysInjected.load(), plan.poisonsInjected.load(),
            plan.swapFaultsInjected.load());
    }
    std::remove(swap_path.c_str());

    // ---- Phase 3: telemetry drift semantics against live traffic. An
    // unshifted soak (the same clean/lightly-perturbed mix the model
    // was profiled on) must raise NO drift event; an injected
    // score-distribution shift (heavy perturbation, which lands in the
    // adversarial score mode the forest was fitted on) must raise one.
    {
        telemetry::TelemetryConfig tcfg;
        tcfg.numClasses = 10;
        tcfg.slots = 8;
        tcfg.windowRecords = 1u << 30; // sealed manually per phase
        telemetry::TelemetryHub hub(tcfg);

        serve::ServeConfig cfg;
        cfg.queueDepth = 64;
        cfg.maxBatch = 8;
        cfg.telemetry = &hub;
        serve::DetectorServer server(w.model, cfg);

        auto offer = [&](const std::vector<nn::Tensor> &traffic,
                         int rounds) {
            serve::ServeRequest req;
            std::size_t served = 0;
            for (int k = 0; k < rounds; ++k) {
                req.reset(traffic[static_cast<std::size_t>(k) %
                                  traffic.size()]);
                server.submit(req);
                if (server.wait(req) == serve::RequestStatus::kOk)
                    ++served;
            }
            return served;
        };

        // Shifted traffic: the same probe inputs under ±0.5 noise.
        std::vector<nn::Tensor> shifted;
        {
            Rng rng(0xD51F7);
            for (const auto &x0 : w.inputs) {
                nn::Tensor x = x0;
                for (std::size_t e = 0; e < x.size(); ++e)
                    x[e] += static_cast<float>(rng.uniform(-0.5, 0.5));
                shifted.push_back(std::move(x));
            }
        }

        offer(w.inputs, 200); // reference profile from benign traffic
        hub.captureReference();

        offer(w.inputs, 200); // unshifted window
        hub.sealWindow();
        const std::uint64_t quiet = hub.driftEventCount();
        if (quiet != 0) {
            ++failures;
            std::cerr << "FAIL: unshifted soak raised " << quiet
                      << " drift event(s)\n";
        }

        offer(shifted, 200); // injected distribution shift
        hub.sealWindow();
        const std::uint64_t after = hub.driftEventCount();
        if (after == quiet) {
            ++failures;
            std::cerr << "FAIL: injected score-distribution shift "
                         "raised no drift event\n";
        }
        server.stop();

        telemetry::WindowSummary ws;
        hub.latestWindow(ws);
        std::printf("soak phase 3: drift quiet on %llu unshifted, "
                    "fired on shift (events=%llu, score_l1=%.3f, "
                    "divergence_l1=%.3f)\n",
                    static_cast<unsigned long long>(
                        hub.windowsSealed() >= 2 ? 200 : 0),
                    static_cast<unsigned long long>(after),
                    ws.scoreL1VsReference, ws.divergenceL1VsReference);
    }

    done.store(true, std::memory_order_release);
    watchdog.join();
    if (failures) {
        std::cerr << "FAIL: soak found " << failures << " violations\n";
        return 1;
    }
    std::printf("soak passed\n");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string out_path = "BENCH_micro.json";
    bool soak = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--soak") == 0)
            soak = true;
        else
            out_path = argv[i];
    }

    ServeWorld w;
    return soak ? runSoak(w) : runSweep(w, out_path);
}
