/**
 * @file
 * Ablation (DESIGN.md) — what each compiler optimization buys.
 *
 * Expected shape: layer-level pipelining matters for forward extraction
 * with real sorting work (Fig. 6 / Fig. 7a), neuron-level pipelining
 * overlaps sort(i+1) with acum(i) in backward loops (Fig. 7b), and the
 * csps recompute trades a little accelerator time for a large cut in
 * partial-sum memory traffic (Sec. IV-B).
 */

#include <cstdio>
#include <iostream>

#include "common/workspace.hh"
#include "hw/area.hh"
#include "hw/simulator.hh"
#include "util/table.hh"

using namespace ptolemy;

int
main()
{
    std::printf("=== Ablation: compiler optimization passes "
                "(AlexNet-class) ===\n\n");
    auto &b = bench::getBundle("alexnet100");
    const int n = static_cast<int>(b.net.weightedNodes().size());

    Table t("Compiler-pass ablation (latency/energy vs inference, "
            "classifier tail excluded)");
    t.header({"config", "Latency", "Energy", "extra DRAM"});

    auto add = [&](const char *name, const path::ExtractionConfig &cfg,
                   compiler::CompileOptions opts) {
        const auto trace = bench::profileTrace(b, cfg);
        const auto cost = bench::costOfTrace(b, cfg, trace, opts);
        const auto fp =
            compiler::Compiler(b.net, cfg, opts).dramFootprint(trace);
        const auto dram = hw::extraDramBytes(
            hw::HwConfig::baseline(), fp.psumCount, fp.maskBits,
            fp.recomputePsums);
        t.row({name, fmtX(cost.latencyXNoCls), fmtX(cost.energyXNoCls),
               fmt(dram / 1024.0, 1) + " KB"});
    };

    const auto bwcu = path::ExtractionConfig::bwCu(n, 0.5);
    compiler::CompileOptions all_on;
    add("BwCu, all passes", bwcu, all_on);

    // Micro-batch amortization: one batch-8 program keeps weights
    // resident across the outer countdown loop, so per-detection cost
    // drops the way detectBatch amortizes its batched SGEMMs.
    {
        const auto trace = bench::profileTrace(b, bwcu);
        compiler::CompileOptions batched = all_on;
        batched.batchSize = 8;
        batched.classifierOps = 0;
        hw::Simulator sim;
        const auto inf_rep =
            sim.run(compiler::Compiler::inferenceOnly(b.net));
        const auto rep = sim.run(
            compiler::Compiler(b.net, bwcu, batched).compile(trace));
        const double per_detect =
            static_cast<double>(rep.cycles) / batched.batchSize;
        const double per_energy = rep.energyPj / batched.batchSize;
        t.row({"BwCu, all passes, batch 8 (per detection)",
               fmtX(per_detect / inf_rep.cycles),
               fmtX(per_energy / inf_rep.energyPj), "-"});
    }

    compiler::CompileOptions no_neuron = all_on;
    no_neuron.neuronPipelining = false;
    add("BwCu, -neuron pipelining", bwcu, no_neuron);

    compiler::CompileOptions no_recompute = all_on;
    no_recompute.recomputePsums = false;
    add("BwCu, -recompute (store psums)", bwcu, no_recompute);

    compiler::CompileOptions none;
    none.neuronPipelining = false;
    none.layerPipelining = false;
    none.recomputePsums = false;
    add("BwCu, no passes (EP-like)", bwcu, none);

    // Forward config with a cumulative last layer (the Fig. 6 program).
    auto fw = bench::calibrated(b, path::ExtractionConfig::fwAb(n), 0.05);
    fw.layers[n - 1].kind = path::ThresholdKind::Cumulative;
    fw.layers[n - 1].theta = 0.5;
    add("Fw (Fig. 6 shape), +layer pipelining", fw, all_on);
    compiler::CompileOptions no_layer = all_on;
    no_layer.layerPipelining = false;
    add("Fw (Fig. 6 shape), -layer pipelining", fw, no_layer);

    t.print(std::cout);
    return 0;
}
