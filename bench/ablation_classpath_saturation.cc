/**
 * @file
 * Ablation (DESIGN.md) — class-path saturation vs profiled images.
 *
 * Paper Sec. III-A: "Pc starts to saturate around 100 images and
 * including more images does not result in all bits being 1."
 */

#include <cstdio>
#include <iostream>

#include "common/workspace.hh"
#include "path/class_path.hh"
#include "path/extractor.hh"
#include "util/table.hh"

using namespace ptolemy;

int
main()
{
    std::printf("=== Ablation: class-path saturation ===\n\n");
    auto &b = bench::getBundle("resnet18c10");
    const int n = static_cast<int>(b.net.weightedNodes().size());
    path::PathExtractor ex(b.net, path::ExtractionConfig::bwCu(n, 0.5));

    Table t("Class-0 path growth (new bits per image, population)");
    t.header({"images aggregated", "path popcount", "fraction of all bits",
              "new bits from last 10 images"});

    path::ClassPathStore store(b.numClasses, ex.layout().totalBits());
    std::size_t aggregated = 0;
    std::size_t recent_new = 0;
    for (const auto &s : b.data.train) {
        if (s.label != 0)
            continue;
        auto rec = b.net.forward(s.input);
        if (rec.predictedClass() != 0)
            continue;
        recent_new += store.aggregate(0, ex.extract(rec));
        ++aggregated;
        if (aggregated % 10 == 0) {
            const std::size_t pop = store.classPath(0).popcount();
            t.row({std::to_string(aggregated), std::to_string(pop),
                   fmtPct(static_cast<double>(pop) /
                          ex.layout().totalBits()),
                   std::to_string(recent_new)});
            recent_new = 0;
        }
        if (aggregated >= 100)
            break;
    }
    t.print(std::cout);
    std::printf("(Expected: new-bit column decays toward zero while the "
                "path stays well below all-ones.)\n");
    return 0;
}
