/**
 * @file
 * Fig. 15 — detection accuracy of adaptive inputs as a function of the
 * class-path similarity between the original and target class.
 *
 * Paper shape: accuracy does not correlate strongly with original/target
 * class-path similarity — attacking from a similar class does not make
 * Ptolemy more vulnerable.
 */

#include <algorithm>
#include <cstdio>
#include <iostream>

#include "attack/adaptive.hh"
#include "common/workspace.hh"
#include "util/stats.hh"
#include "util/table.hh"

using namespace ptolemy;

int
main()
{
    std::printf("=== Fig. 15: detection accuracy vs original/target "
                "class-path similarity ===\n\n");
    auto &b = bench::getBundle("alexnet100");
    const int n = static_cast<int>(b.net.weightedNodes().size());
    auto bld =
        bench::makeBuilder(b, path::ExtractionConfig::bwCu(n, 0.5));
    core::DetectorSession sess(bld->model());

    std::vector<core::DetectionPair> pairs;
    for (int at_n : {2, 3, 8}) {
        attack::AdaptiveActivationAttack atk(at_n, &b.data.train, 5, 50,
                                             0.08);
        for (auto &p : bench::getPairs(b, atk, 50))
            pairs.push_back(std::move(p));
    }
    const auto scored = core::fitAndScore(*bld, sess, pairs, 0.5);

    // For each held-out adversarial sample, the original class is the
    // clean label and the "target" is whatever class the model now
    // predicts; bucket by the class-path similarity between the two.
    const auto &store = bld->model().classPaths();
    std::vector<double> sims;
    for (const auto &s : scored.heldOut)
        if (s.label == 1 && s.trueClass != s.predictedClass)
            sims.push_back(store.interClassSimilarity(s.trueClass,
                                                      s.predictedClass));
    std::sort(sims.begin(), sims.end());

    Table t("Fig. 15: avg detection AUC over adaptive samples whose "
            "orig/target path similarity <= x");
    t.header({"similarity <= x", "samples", "AUC"});
    for (double q : {0.25, 0.5, 0.75, 1.0}) {
        const double x = sims.empty()
            ? 0.0
            : sims[static_cast<std::size_t>((sims.size() - 1) * q)];
        std::vector<double> scores;
        std::vector<int> labels;
        std::size_t n_adv = 0;
        for (const auto &s : scored.heldOut) {
            if (s.label == 1) {
                if (s.trueClass == s.predictedClass)
                    continue;
                const double sim = store.interClassSimilarity(
                    s.trueClass, s.predictedClass);
                if (sim > x)
                    continue;
                ++n_adv;
            }
            scores.push_back(s.score);
            labels.push_back(s.label);
        }
        t.row({fmt(x, 3), std::to_string(n_adv),
               fmt(aucScore(scores, labels), 3)});
    }
    t.print(std::cout);
    std::printf("(Expected: weak correlation between the similarity "
                "bound and the AUC.)\n");
    return 0;
}
