/**
 * @file
 * Sec. III-B cost analysis of the unoptimized detection algorithm.
 *
 * Paper: storing every partial sum costs 9-420x the normal memory
 * footprint; important neurons are <5% of all neurons even at theta=0.9;
 * the expensive sort/accumulate ops touch only that small fraction; a
 * pure software implementation is 15.4x (AlexNet) / 50.7x (ResNet50)
 * slower than inference.
 */

#include <cstdio>
#include <iostream>

#include "common/workspace.hh"
#include "path/extractor.hh"
#include "util/table.hh"

using namespace ptolemy;

int
main()
{
    std::printf("=== Sec. III-B: cost analysis of the basic algorithm "
                "===\n\n");

    Table t("Unoptimized BwCu cost (per model)");
    t.header({"model", "psum mem / fmap+weight mem",
              "important-neuron fraction (theta=0.9)",
              "SW detect us (fwd+ext+score)", "SW detect / SW inference"});

    for (const char *name : {"alexnet100", "resnet18c100"}) {
        auto &b = bench::getBundle(name);
        const int n = static_cast<int>(b.net.weightedNodes().size());

        // Memory overhead: every partial sum (one per MAC, at 32-bit
        // accumulator precision) vs the normal feature-map + weight
        // traffic of the network.
        const auto cfg9 = path::ExtractionConfig::bwCu(n, 0.9);
        const auto trace9 = bench::profileTrace(b, cfg9);
        std::size_t fmap_w_bytes = 0;
        for (int id : b.net.weightedNodes()) {
            fmap_w_bytes += b.net.nodeInputShape(id).numel() * 2;
            fmap_w_bytes += b.net.nodeOutputShape(id).numel() * 2;
        }
        fmap_w_bytes += b.net.numParams() * 2;
        const std::size_t psum_bytes = path::networkMacs(b.net) * 4;
        const double mem_ratio =
            static_cast<double>(psum_bytes) / fmap_w_bytes;

        // Important-neuron sparsity at theta=0.9.
        std::size_t total_neurons = 0;
        for (int id : b.net.weightedNodes())
            total_neurons += b.net.nodeInputShape(id).numel();
        const double imp_frac =
            static_cast<double>(trace9.pathBits) / total_neurons;

        // Software latency: measured on the optimized serving engine
        // (detectBatch cost split), not a modeled single-sort-unit
        // simulator configuration. The detect/inference ratio is the
        // honest software-only overhead the paper's 15.4x/50.7x claim
        // corresponds to.
        const auto cfg5 = path::ExtractionConfig::bwCu(n, 0.5);
        const auto sw = bench::measureSwDetectCost(b, cfg5);

        t.row({name, fmtX(mem_ratio), fmtPct(imp_frac),
               fmt(sw.totalUs(), 1) + " us (" + fmt(sw.forwardUs, 1) +
                   "+" + fmt(sw.extractUs, 1) + "+" + fmt(sw.scoreUs, 1) +
                   ")",
               fmtX(sw.totalUs() / sw.forwardUs)});
    }
    t.print(std::cout);
    std::printf("(Paper points: 9-420x memory, <5%% important neurons, "
                "15.4x/50.7x software latency. Mini models are less\n"
                " sparse than ImageNet-scale networks, so the "
                "important-neuron fraction runs higher; orderings and "
                "ratios are the result.\n Software latency is wall-clock "
                "of the optimized detectBatch engine, measured per "
                "stage.)\n");
    return 0;
}
