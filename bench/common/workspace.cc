#include "workspace.hh"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <stdexcept>

#include "hw/simulator.hh"
#include "models/zoo.hh"
#include "nn/init.hh"
#include "nn/trainer.hh"
#include "path/extractor.hh"
#include "util/rng.hh"
#include "util/serialize.hh"
#include "util/thread_pool.hh"

namespace ptolemy::bench
{

namespace fs = std::filesystem;

namespace
{

const char *kCacheDir = "ptolemy_cache";

/** Per-bundle recipe: model factory args + dataset + trainer settings. */
struct Recipe
{
    std::string model;
    int numClasses;
    int trainPerClass;
    int testPerClass;
    int epochs;
    double lr;
    std::uint64_t dataSeed;
    std::uint64_t initSeed;
};

Recipe
recipeFor(const std::string &name)
{
    if (name == "alexnet100")
        return {"alexnet", 100, 40, 10, 6, 0.05, 1001, 11};
    if (name == "resnet18c100")
        return {"resnet18", 100, 30, 8, 6, 0.03, 1002, 12};
    if (name == "resnet18c10")
        return {"resnet18", 10, 120, 30, 5, 0.03, 1003, 13};
    if (name == "alexnet10")
        return {"alexnet", 10, 120, 30, 5, 0.05, 1004, 14};
    if (name == "vgg16c10")
        return {"vgg16", 10, 120, 30, 6, 0.02, 1005, 15};
    if (name == "inceptionc10")
        return {"inception", 10, 120, 30, 5, 0.05, 1006, 16};
    if (name == "densenetc10")
        return {"densenet", 10, 120, 30, 5, 0.05, 1007, 17};
    if (name == "resnet26c10")
        return {"resnet26", 10, 120, 30, 5, 0.03, 1008, 18};
    throw std::invalid_argument("unknown bundle: " + name);
}

std::string
modelCachePath(const std::string &name)
{
    return std::string(kCacheDir) + "/" + name + ".model";
}

} // namespace

Bundle &
getBundle(const std::string &name)
{
    static std::map<std::string, std::unique_ptr<Bundle>> registry;
    auto it = registry.find(name);
    if (it != registry.end())
        return *it->second;

    const Recipe r = recipeFor(name);
    auto b = std::make_unique<Bundle>();
    b->name = name;
    b->numClasses = r.numClasses;

    data::DatasetSpec spec;
    spec.numClasses = r.numClasses;
    spec.trainPerClass = r.trainPerClass;
    spec.testPerClass = r.testPerClass;
    spec.seed = r.dataSeed;
    b->data = data::makeSyntheticDataset(spec);

    b->net = models::makeByName(r.model, r.numClasses);
    fs::create_directories(kCacheDir);
    const std::string path = modelCachePath(name);
    if (!b->net.load(path)) {
        std::printf("[workspace] training %s (%zu samples, %d epochs)...\n",
                    name.c_str(), b->data.train.size(), r.epochs);
        std::fflush(stdout);
        nn::heInit(b->net, r.initSeed);
        nn::TrainConfig tc;
        tc.epochs = r.epochs;
        tc.learningRate = r.lr;
        nn::Trainer trainer(tc);
        trainer.train(b->net, b->data.train);
        b->net.save(path);
    }
    b->cleanAccuracy = nn::Trainer::evaluate(b->net, b->data.test);
    std::printf("[workspace] %s ready: clean accuracy %.3f\n", name.c_str(),
                b->cleanAccuracy);
    std::fflush(stdout);

    auto &ref = *b;
    registry[name] = std::move(b);
    return ref;
}

std::vector<core::DetectionPair>
getPairs(Bundle &b, attack::Attack &atk, int max_samples,
         std::uint64_t seed)
{
    fs::create_directories(kCacheDir);
    const std::string path = std::string(kCacheDir) + "/" + b.name + "_" +
                             atk.name() + "_" +
                             std::to_string(max_samples) + ".pairs";

    auto load = [&]() -> std::vector<core::DetectionPair> {
        std::ifstream is(path, std::ios::binary);
        std::vector<core::DetectionPair> pairs;
        if (!is)
            return pairs;
        std::uint64_t n;
        if (!readU64(is, n))
            return {};
        const nn::Shape shape = b.net.inputShape();
        pairs.resize(n);
        for (auto &p : pairs) {
            std::uint64_t label;
            std::vector<float> clean, adv;
            if (!readU64(is, label) || !readF64(is, p.mse) ||
                !readFloats(is, clean) || !readFloats(is, adv) ||
                clean.size() != shape.numel() ||
                adv.size() != shape.numel())
                return {};
            p.label = label;
            p.clean = nn::Tensor(shape, std::move(clean));
            p.adversarial = nn::Tensor(shape, std::move(adv));
        }
        return pairs;
    };

    auto pairs = load();
    if (!pairs.empty())
        return pairs;

    std::printf("[workspace] attacking %s with %s (%d samples)...\n",
                b.name.c_str(), atk.name().c_str(), max_samples);
    std::fflush(stdout);
    pairs = core::buildAttackPairs(b.net, atk, b.data.test, max_samples,
                                   seed);
    std::ofstream os(path, std::ios::binary);
    if (os) {
        writeU64(os, pairs.size());
        for (const auto &p : pairs) {
            writeU64(os, p.label);
            writeF64(os, p.mse);
            writeFloats(os, p.clean.vec());
            writeFloats(os, p.adversarial.vec());
        }
    }
    return pairs;
}

path::ExtractionConfig
calibrated(Bundle &b, path::ExtractionConfig cfg, double fraction)
{
    std::vector<nn::Tensor> samples;
    const std::size_t stride = std::max<std::size_t>(
        1, b.data.train.size() / 8);
    for (std::size_t i = 0; i < b.data.train.size() && samples.size() < 8;
         i += stride)
        samples.push_back(b.data.train[i].input);
    path::calibrateAbsoluteThresholds(b.net, cfg, samples, fraction);
    return cfg;
}

path::ExtractionTrace
profileTrace(Bundle &b, const path::ExtractionConfig &cfg, int samples)
{
    path::PathExtractor ex(b.net, cfg);
    std::vector<const nn::Tensor *> xs;
    const std::size_t stride =
        std::max<std::size_t>(1, b.data.test.size() / samples);
    for (std::size_t i = 0;
         i < b.data.test.size() &&
         xs.size() < static_cast<std::size_t>(samples);
         i += stride)
        xs.push_back(&b.data.test[i].input);
    std::vector<nn::Network::Record> recs;
    b.net.forwardBatch(std::span<const nn::Tensor *const>(xs.data(),
                                                          xs.size()),
                       recs, &globalPool());
    return ex.profileBatch(recs, &globalPool());
}

CostResult
costOfTrace(Bundle &b, const path::ExtractionConfig &cfg,
            const path::ExtractionTrace &trace,
            compiler::CompileOptions opts, hw::HwConfig hw_cfg)
{
    hw::Simulator sim(hw_cfg);
    CostResult r;
    r.inference =
        sim.run(compiler::Compiler::inferenceOnly(b.net));
    compiler::Compiler comp(b.net, cfg, opts);
    r.detection = sim.run(comp.compile(trace));
    r.latencyX = static_cast<double>(r.detection.cycles) /
                 r.inference.cycles;
    r.energyX = r.detection.energyPj / r.inference.energyPj;

    compiler::CompileOptions no_cls = opts;
    no_cls.classifierOps = 0;
    compiler::Compiler comp2(b.net, cfg, no_cls);
    const auto rep2 = sim.run(comp2.compile(trace));
    r.latencyXNoCls =
        static_cast<double>(rep2.cycles) / r.inference.cycles;
    r.energyXNoCls = rep2.energyPj / r.inference.energyPj;
    return r;
}

CostResult
costOf(Bundle &b, const path::ExtractionConfig &cfg,
       compiler::CompileOptions opts, hw::HwConfig hw_cfg)
{
    return costOfTrace(b, cfg, profileTrace(b, cfg), opts, hw_cfg);
}

std::unique_ptr<core::DetectorBuilder>
makeBuilder(Bundle &b, path::ExtractionConfig cfg, int profile_per_class)
{
    auto bld = std::make_unique<core::DetectorBuilder>(
        b.net, std::move(cfg), static_cast<std::size_t>(b.numClasses));
    bld->profileClassPaths(b.data.train, profile_per_class);
    return bld;
}

namespace
{

double
benchMinTime()
{
    if (const char *s = std::getenv("PTOLEMY_BENCH_MIN_TIME"))
        return std::atof(s);
    return 0.05;
}

template <typename Fn>
double
secsPerCall(Fn &&fn, double min_seconds)
{
    using Clock = std::chrono::steady_clock;
    std::size_t reps = 0;
    const auto start = Clock::now();
    double elapsed = 0.0;
    do {
        fn();
        ++reps;
        elapsed =
            std::chrono::duration<double>(Clock::now() - start).count();
    } while (elapsed < min_seconds);
    return elapsed / static_cast<double>(reps);
}

} // namespace

SwDetectCost
measureSwDetectCost(Bundle &b, const path::ExtractionConfig &cfg,
                    int profile_per_class)
{
    // Fit a real model on the bundle: profiled class paths plus a forest
    // trained on clean-vs-noisy rows, so the score stage pays the same
    // tree walks production scoring does.
    auto bld = makeBuilder(b, cfg, profile_per_class);
    {
        Rng rng(0x5C0FE);
        std::vector<nn::Tensor> clean, noisy;
        const std::size_t stride =
            std::max<std::size_t>(1, b.data.test.size() / 16);
        for (std::size_t i = 0;
             i < b.data.test.size() && clean.size() < 16; i += stride) {
            clean.push_back(b.data.test[i].input);
            nn::Tensor p = clean.back();
            for (std::size_t e = 0; e < p.size(); ++e)
                p[e] += static_cast<float>(rng.uniform(-0.1, 0.1));
            noisy.push_back(std::move(p));
        }
        classify::FeatureMatrix benign, adversarial;
        bld->featuresBatch(clean, benign);
        bld->featuresBatch(noisy, adversarial);
        bld->fitClassifier(benign, adversarial);
    }
    const core::DetectorModel &model = bld->model();

    std::vector<const nn::Tensor *> xs;
    const std::size_t stride =
        std::max<std::size_t>(1, b.data.test.size() / 16);
    for (std::size_t i = 0; i < b.data.test.size() && xs.size() < 16;
         i += stride)
        xs.push_back(&b.data.test[i].input);
    const std::span<const nn::Tensor *const> xspan(xs.data(), xs.size());
    const double min_time = benchMinTime();

    SwDetectCost cost;
    // Stage 1: the wide batched forward (one SGEMM per layer across the
    // chunk), amortized per sample.
    std::vector<nn::Network::Record> recs;
    model.network().forwardBatchWide(xspan, recs); // warm + records
    cost.forwardUs =
        secsPerCall([&] { model.network().forwardBatchWide(xspan, recs); },
                    min_time) /
        static_cast<double>(xs.size()) * 1e6;

    // Stage 2: path extraction with the default branchless workspace.
    path::ExtractionWorkspace ws;
    BitVector path_bits;
    std::size_t cursor = 0;
    model.extractor().extractInto(recs[0], ws, path_bits); // warm
    cost.extractUs = secsPerCall(
                         [&] {
                             model.extractor().extractInto(recs[cursor], ws,
                                                           path_bits);
                             cursor = (cursor + 1) % recs.size();
                         },
                         min_time) *
                     1e6;

    // Stage 3: similarity features + forest probability.
    path::SimilarityFeatures feats;
    std::vector<double> feat_vec;
    volatile double sink = 0.0;
    cursor = 0;
    cost.scoreUs =
        secsPerCall(
            [&] {
                const std::size_t pred = recs[cursor].predictedClass();
                path::computeSimilarityInto(
                    path_bits, model.classPaths().classPath(pred),
                    model.extractor().layout(), feats);
                feats.toVectorInto(feat_vec);
                sink = model.forest().predictProb(feat_vec);
                cursor = (cursor + 1) % recs.size();
            },
            min_time) *
        1e6;
    (void)sink;
    return cost;
}

VariantSet
makeVariants(Bundle &b, double theta, double phi_fraction)
{
    const int n = static_cast<int>(b.net.weightedNodes().size());
    VariantSet v{
        path::ExtractionConfig::bwCu(n, theta),
        calibrated(b, path::ExtractionConfig::bwAb(n), phi_fraction),
        calibrated(b, path::ExtractionConfig::fwAb(n), phi_fraction),
        calibrated(b, path::ExtractionConfig::hybrid(n, theta),
                   phi_fraction),
    };
    return v;
}

} // namespace ptolemy::bench
