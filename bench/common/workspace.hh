/**
 * @file
 * Shared bench workspace.
 *
 * Every experiment harness needs trained models, datasets, attack pairs
 * and cost simulations. Training and attack generation are the expensive
 * parts, so both are cached on disk under ./ptolemy_cache (keyed by model
 * architecture signature / attack name); the first bench run pays the
 * cost, later runs load in milliseconds.
 *
 * Model naming maps to the paper's workloads (DESIGN.md substitutions):
 *   alexnet100   — MiniAlexNet,  100 classes (plays AlexNet @ ImageNet)
 *   resnet18c100 — MiniResNet18, 100 classes (plays ResNet18 @ CIFAR-100)
 *   resnet18c10  — MiniResNet18,  10 classes (plays ResNet18 @ CIFAR-10)
 *   vgg16c10 / inceptionc10 / densenetc10 / resnet26c10 — Sec. VII-H zoo.
 */

#ifndef PTOLEMY_BENCH_COMMON_WORKSPACE_HH
#define PTOLEMY_BENCH_COMMON_WORKSPACE_HH

#include <memory>
#include <string>
#include <vector>

#include "attack/attack.hh"
#include "compiler/compiler.hh"
#include "core/detector_model.hh"
#include "core/detector_session.hh"
#include "core/evaluation.hh"
#include "data/synthetic.hh"
#include "hw/config.hh"
#include "hw/report.hh"
#include "nn/network.hh"
#include "path/extraction_config.hh"
#include "path/trace.hh"

namespace ptolemy::bench
{

/** A trained model plus its dataset. */
struct Bundle
{
    std::string name;
    int numClasses = 0;
    data::SplitDataset data;
    nn::Network net{"", nn::Shape{}};
    double cleanAccuracy = 0.0;
};

/** Get (train or load) a bundle by workspace name. Bundles are process-
 *  wide singletons; the reference stays valid for the process lifetime. */
Bundle &getBundle(const std::string &name);

/** Attack clean/adversarial pairs, disk-cached per (bundle, attack). */
std::vector<core::DetectionPair> getPairs(Bundle &b, attack::Attack &atk,
                                          int max_samples,
                                          std::uint64_t seed = 0xE7A1);

/** Calibrate absolute thresholds on a few training samples so roughly
 *  @p fraction of compared values pass (the offline profiling step). */
path::ExtractionConfig calibrated(Bundle &b, path::ExtractionConfig cfg,
                                  double fraction = 0.05);

/** Average extraction trace over a few test inputs. Rides the batched
 *  profiling pipeline (Network::forwardBatch +
 *  PathExtractor::profileBatch), bit-identical to the per-sample walk
 *  at any thread count. */
path::ExtractionTrace profileTrace(Bundle &b,
                                   const path::ExtractionConfig &cfg,
                                   int samples = 5);

/** Compile + simulate one configuration; everything normalized against
 *  an inference-only run on the same hardware. */
struct CostResult
{
    hw::PerfReport detection;
    hw::PerfReport inference;
    double latencyX = 1.0;      ///< detection cycles / inference cycles
    double energyX = 1.0;
    double latencyXNoCls = 1.0; ///< excluding the constant classifier tail
    double energyXNoCls = 1.0;
};

CostResult costOf(Bundle &b, const path::ExtractionConfig &cfg,
                  compiler::CompileOptions opts = {},
                  hw::HwConfig hw_cfg = hw::HwConfig::baseline());

CostResult costOfTrace(Bundle &b, const path::ExtractionConfig &cfg,
                       const path::ExtractionTrace &trace,
                       compiler::CompileOptions opts = {},
                       hw::HwConfig hw_cfg = hw::HwConfig::baseline());

/**
 * Offline phase for one (bundle, config) pair: a DetectorBuilder with
 * class paths already profiled. Serve from it by binding sessions to
 * builder->model(); fitClassifier mutates the model in place, so bound
 * sessions observe the fit. unique_ptr because DetectorBuilder is
 * neither copyable nor movable (its internal session is bound to the
 * model member).
 */
std::unique_ptr<core::DetectorBuilder>
makeBuilder(Bundle &b, path::ExtractionConfig cfg,
            int profile_per_class = 100);

/**
 * Measured per-detection cost split of the optimized software serving
 * path (the detectBatch stages timed through their public seams):
 * the wide batched forward, branchless-workspace path extraction, and
 * the similarity + forest scoring tail. This is the honest software
 * baseline the HW co-design benches normalize against — wall-clock of
 * the engine that actually serves, not a modeled pipeline.
 */
struct SwDetectCost
{
    double forwardUs = 0.0;
    double extractUs = 0.0;
    double scoreUs = 0.0;
    double totalUs() const { return forwardUs + extractUs + scoreUs; }
};

/** Measure the serving cost split for @p cfg on @p b's model. Honors
 *  PTOLEMY_BENCH_MIN_TIME for the per-stage measurement window. */
SwDetectCost measureSwDetectCost(Bundle &b,
                                 const path::ExtractionConfig &cfg,
                                 int profile_per_class = 16);

/** The standard variant set of Sec. VI-B, calibrated for @p b. */
struct VariantSet
{
    path::ExtractionConfig bwCu, bwAb, fwAb, hybrid;
};
VariantSet makeVariants(Bundle &b, double theta = 0.5,
                        double phi_fraction = 0.05);

} // namespace ptolemy::bench

#endif // PTOLEMY_BENCH_COMMON_WORKSPACE_HH
