/**
 * @file
 * Fig. 10 — detection accuracy of the four Ptolemy variants vs EP and
 * CDRP on both networks, across the five standard attacks.
 *
 * Paper shape: on AlexNet the backward variants (BwCu/BwAb/Hybrid) beat
 * EP by up to 0.02 and CDRP by up to 0.1; FwAb is ~0.03 below EP but
 * above CDRP. On ResNet18 Ptolemy beats CDRP by 0.14-0.16 and is within
 * 0.01 of EP. Error bars are min/max across attacks.
 */

#include <cstdio>
#include <iostream>

#include "attack/suite.hh"
#include "baselines/cdrp.hh"
#include "baselines/ep.hh"
#include "common/workspace.hh"
#include "util/stats.hh"
#include "util/table.hh"

using namespace ptolemy;

namespace
{

struct Row
{
    std::string name;
    std::vector<double> perAttackAuc;
};

void
runModel(const char *bundle_name, const char *paper_role, int max_samples)
{
    auto &b = bench::getBundle(bundle_name);
    auto attacks = attack::makeStandardAttacks();
    const auto variants = bench::makeVariants(b);

    // Collect pairs per attack once (cached on disk).
    std::vector<std::vector<core::DetectionPair>> pairs;
    for (auto &atk : attacks)
        pairs.push_back(bench::getPairs(b, *atk, max_samples));

    std::vector<Row> rows;
    auto eval_variant = [&](const std::string &name,
                            const path::ExtractionConfig &cfg) {
        auto bld = bench::makeBuilder(b, cfg);
        core::DetectorSession sess(bld->model());
        Row r{name, {}};
        for (std::size_t a = 0; a < attacks.size(); ++a)
            r.perAttackAuc.push_back(
                core::fitAndScore(*bld, sess, pairs[a], 0.5).auc);
        rows.push_back(std::move(r));
    };
    eval_variant("BwCu", variants.bwCu);
    eval_variant("BwAb", variants.bwAb);
    eval_variant("FwAb", variants.fwAb);
    eval_variant("Hybrid", variants.hybrid);

    auto eval_baseline = [&](baselines::BaselineDetector &det) {
        det.profile(b.net, b.data.train);
        Row r{det.name(), {}};
        for (std::size_t a = 0; a < attacks.size(); ++a)
            r.perAttackAuc.push_back(
                baselines::evaluateBaselineAuc(det, b.net, pairs[a]));
        rows.push_back(std::move(r));
    };
    baselines::EpBaseline ep(b.net, b.numClasses);
    eval_baseline(ep);
    baselines::CdrpBaseline cdrp(b.net, b.numClasses);
    eval_baseline(cdrp);

    Table t(std::string("Fig. 10 accuracy, ") + bundle_name + " (plays " +
            paper_role + ")");
    std::vector<std::string> header{"scheme"};
    for (auto &atk : attacks)
        header.push_back(atk->name());
    header.push_back("avg");
    header.push_back("min");
    header.push_back("max");
    t.header(header);
    for (const auto &r : rows) {
        std::vector<std::string> cells{r.name};
        for (double auc : r.perAttackAuc)
            cells.push_back(fmt(auc, 3));
        cells.push_back(fmt(mean(r.perAttackAuc), 3));
        cells.push_back(fmt(minOf(r.perAttackAuc), 3));
        cells.push_back(fmt(maxOf(r.perAttackAuc), 3));
        t.row(cells);
    }
    t.print(std::cout);
    std::printf("(CDRP requires retraining and cannot detect at "
                "inference time; accuracy shown for reference, as in the "
                "paper.)\n\n");
}

} // namespace

int
main()
{
    std::printf("=== Fig. 10: accuracy comparison with EP and CDRP ===\n\n");
    runModel("alexnet100", "AlexNet @ ImageNet", 80);
    runModel("resnet18c100", "ResNet18 @ CIFAR-100", 60);
    return 0;
}
