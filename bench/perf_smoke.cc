/**
 * @file
 * Hot-path perf smoke: conv GFLOP/s (GEMM vs naive reference), path
 * extractions/sec (single-stream and pool-parallel extractBatch vs the
 * legacy allocate-and-sort strategy), forward+backward passes/sec,
 * data-parallel SGD samples/sec (pooled and 1-thread), and bit-vector
 * similarity ops/sec. Emits BENCH_micro.json — including the thread
 * count, SIMD mode and core count the numbers were taken under — so
 * every PR records a comparable perf trajectory, and counts heap
 * allocations inside the steady-state extract, backward and training
 * loops to prove all three are allocation-free.
 *
 * Runtime is bounded by PTOLEMY_BENCH_MIN_TIME seconds per measurement
 * (default 0.3), so the harness stays CI-friendly.
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <new>
#include <vector>

#include "attack/gradient_attacks.hh"
#include "compiler/compiler.hh"
#include "core/detector_model.hh"
#include "core/detector_session.hh"
#include "data/synthetic.hh"
#include "hw/area.hh"
#include "hw/simulator.hh"
#include "nn/common_layers.hh"
#include "nn/conv.hh"
#include "nn/gemm.hh"
#include "nn/init.hh"
#include "nn/linear.hh"
#include "nn/loss.hh"
#include "nn/network.hh"
#include "nn/trainer.hh"
#include "path/class_path.hh"
#include "path/extraction_config.hh"
#include "path/extractor.hh"
#include "util/json.hh"
#include "util/rng.hh"
#include "util/thread_pool.hh"

namespace
{

std::atomic<std::size_t> g_allocs{0};

} // namespace

// Count every heap allocation in the process so the steady-state
// extract loop can be shown to perform none.
void *
operator new(std::size_t n)
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(n ? n : 1))
        return p;
    throw std::bad_alloc();
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace
{

using namespace ptolemy;
using Clock = std::chrono::steady_clock;

double
minMeasureTime()
{
    if (const char *s = std::getenv("PTOLEMY_BENCH_MIN_TIME"))
        return std::atof(s);
    return 0.3;
}

/** Run @p fn repeatedly until @p min_seconds elapsed; returns seconds
 *  per call. */
template <typename Fn>
double
secsPerCall(Fn &&fn, double min_seconds)
{
    std::size_t reps = 0;
    const auto start = Clock::now();
    double elapsed = 0.0;
    do {
        fn();
        ++reps;
        elapsed = std::chrono::duration<double>(Clock::now() - start).count();
    } while (elapsed < min_seconds);
    return elapsed / static_cast<double>(reps);
}

/** {min, median, max} seconds-per-call over repeated timing trials. */
struct TimingStat
{
    double min = 0.0;
    double median = 0.0;
    double max = 0.0;
};

/**
 * Noise-resistant timing: one untimed warm-up call, then @p trials
 * independent secsPerCall measurements whose budgets split
 * @p min_seconds between them, reported as {min, median, max}. The
 * gated headline value is the median — on a shared CI core a single
 * secsPerCall window can land on a scheduling hiccup and swing +-20%,
 * which the median of five absorbs — while min/max record the spread
 * so a wide run is visible in the artifact.
 */
template <typename Fn>
TimingStat
medianSecsPerCall(Fn &&fn, double min_seconds, int trials = 5)
{
    fn(); // warm-up: fault in scratch and caches outside the timing
    std::vector<double> t(static_cast<std::size_t>(trials));
    for (auto &x : t)
        x = secsPerCall(fn, min_seconds / trials);
    std::sort(t.begin(), t.end());
    TimingStat s;
    s.min = t.front();
    s.median = t[t.size() / 2];
    s.max = t.back();
    return s;
}

TimingStat
statOf(std::vector<double> t)
{
    std::sort(t.begin(), t.end());
    TimingStat s;
    s.min = t.front();
    s.median = t[t.size() / 2];
    s.max = t.back();
    return s;
}

/**
 * A/B timing with the trials INTERLEAVED (a, b, a, b, ...) rather than
 * run as two back-to-back blocks: the two arms of a same-host ratio
 * (packed vs per-call-packed forward) then see the same slow drift —
 * frequency steps, a neighbor landing on the core — instead of one arm
 * eating a whole bad window, so the gated ratio of the medians is far
 * steadier than two independent measurements minutes apart. @p knob is
 * flipped true for the A arm, false for B, and restored.
 */
template <typename Fn>
std::pair<TimingStat, TimingStat>
interleavedABSecsPerCall(Fn &&fn, bool &knob, double min_seconds,
                         int trials = 5)
{
    const bool saved = knob;
    knob = true;
    fn(); // warm arm A
    knob = false;
    fn(); // warm arm B
    std::vector<double> ta(static_cast<std::size_t>(trials));
    std::vector<double> tb(static_cast<std::size_t>(trials));
    const double budget = min_seconds / (2 * trials);
    for (int i = 0; i < trials; ++i) {
        knob = true;
        ta[static_cast<std::size_t>(i)] = secsPerCall(fn, budget);
        knob = false;
        tb[static_cast<std::size_t>(i)] = secsPerCall(fn, budget);
    }
    knob = saved;
    return {statOf(std::move(ta)), statOf(std::move(tb))};
}

void
randomFill(std::vector<float> &v, Rng &rng, float scale)
{
    for (auto &x : v)
        x = (static_cast<float>(rng.uniform()) - 0.5f) * scale;
}

/** VGG-style conv layer: 64 -> 64 channels, 32x32, k=3, s=1, p=1. */
struct ConvBenchResult
{
    double gemmGflops = 0.0;    ///< median, persistent packed weights
    double gemmGflopsMin = 0.0; ///< spread (slowest trial)
    double gemmGflopsMax = 0.0; ///< spread (fastest trial)
    double nopackGflops = 0.0;  ///< median, per-call B-panel packing
    double naiveGflops = 0.0;
};

ConvBenchResult
benchConv(double min_time)
{
    nn::Conv2d conv("bench_conv", 64, 64, 3, 1, 1);
    Rng rng(0xC0FFEE);
    randomFill(conv.weights(), rng, 0.2f);
    randomFill(conv.biases(), rng, 0.2f);
    conv.prepackWeights(); // after the fills (accessors invalidate)
    nn::Tensor in(nn::mapShape(64, 32, 32));
    for (std::size_t i = 0; i < in.size(); ++i)
        in[i] = static_cast<float>(rng.uniform());
    nn::Tensor out;

    const double flops = 2.0 * 64 * 32 * 32 * 64 * 3 * 3;
    ConvBenchResult r;

    const bool saved = nn::naiveConvFlag();
    nn::naiveConvFlag() = false;
    auto fwd = [&] { conv.forwardInto({&in}, out, false); };

    const auto [packed, nopack] = interleavedABSecsPerCall(
        fwd, nn::prepackEnabled(), 2.0 * min_time);
    r.gemmGflops = flops / packed.median / 1e9;
    r.gemmGflopsMin = flops / packed.max / 1e9;
    r.gemmGflopsMax = flops / packed.min / 1e9;
    r.nopackGflops = flops / nopack.median / 1e9;

    nn::naiveConvFlag() = true;
    r.naiveGflops = flops / medianSecsPerCall(fwd, min_time).median / 1e9;
    nn::naiveConvFlag() = saved;
    return r;
}

/** Small VGG-ish CNN whose extraction cost is conv-dominated. */
nn::Network
extractionNet()
{
    nn::Network net("perf_smoke", nn::mapShape(3, 32, 32));
    net.add(std::make_unique<nn::Conv2d>("c1", 3, 16, 3, 1, 1));
    net.add(std::make_unique<nn::ReLU>("r1"));
    net.add(std::make_unique<nn::MaxPool2d>("p1", 2)); // 16x16
    net.add(std::make_unique<nn::Conv2d>("c2", 16, 32, 3, 1, 1));
    net.add(std::make_unique<nn::ReLU>("r2"));
    net.add(std::make_unique<nn::MaxPool2d>("p2", 2)); // 8x8
    net.add(std::make_unique<nn::Conv2d>("c3", 32, 32, 3, 1, 1));
    net.add(std::make_unique<nn::ReLU>("r3"));
    net.add(std::make_unique<nn::Flatten>("f"));
    net.add(std::make_unique<nn::Linear>("fc1", 32 * 8 * 8, 64));
    net.add(std::make_unique<nn::ReLU>("r4"));
    net.add(std::make_unique<nn::Linear>("fc2", 64, 10));
    nn::heInit(net, 11);
    return net;
}

struct ExtractBenchResult
{
    double newPerSec = 0.0;
    double batchPerSec = 0.0;
    double legacyPerSec = 0.0;
    std::size_t allocsPerExtract = 0;
    std::size_t pathBits = 0;
    std::size_t numSamples = 0;
};

ExtractBenchResult
benchExtraction(double min_time)
{
    nn::Network net = extractionNet();
    const auto cfg = path::ExtractionConfig::bwCu(
        static_cast<int>(net.weightedNodes().size()), 0.5);
    path::PathExtractor ex(net, cfg);

    // 100 recorded inferences (the acceptance workload).
    constexpr std::size_t kSamples = 100;
    Rng rng(0xBEEF);
    std::vector<nn::Tensor> xs;
    xs.reserve(kSamples);
    for (std::size_t s = 0; s < kSamples; ++s) {
        nn::Tensor x(nn::mapShape(3, 32, 32));
        for (std::size_t i = 0; i < x.size(); ++i)
            x[i] = static_cast<float>(rng.uniform());
        xs.push_back(std::move(x));
    }
    std::vector<nn::Network::Record> recs;
    net.forwardBatch(xs, recs);

    ExtractBenchResult r;
    r.numSamples = kSamples;

    // New strategy: persistent workspace + reused BitVector + heap-prefix
    // selection.
    path::ExtractionWorkspace ws;
    BitVector bits;
    std::size_t cursor = 0;
    for (std::size_t i = 0; i < kSamples; ++i) // warm every buffer
        ex.extractInto(recs[i], ws, bits);
    r.pathBits = bits.popcount();

    const std::size_t allocs_before =
        g_allocs.load(std::memory_order_relaxed);
    std::size_t calls = 0;
    const double new_spc = secsPerCall(
        [&] {
            ex.extractInto(recs[cursor], ws, bits);
            cursor = (cursor + 1) % kSamples;
            ++calls;
        },
        min_time);
    const std::size_t allocs_after = g_allocs.load(std::memory_order_relaxed);
    r.newPerSec = 1.0 / new_spc;
    r.allocsPerExtract = calls ? (allocs_after - allocs_before) / calls : 0;

    // Pool-parallel batched extraction (the detector-evaluation path):
    // whole batches per call, one workspace per pool slot.
    {
        ptolemy::ThreadPool &pool = ptolemy::globalPool();
        path::BatchExtractionWorkspace bws;
        std::vector<BitVector> out;
        ex.extractBatch(recs, out, bws, &pool); // warm per-slot buffers
        const double batch_spc = secsPerCall(
            [&] { ex.extractBatch(recs, out, bws, &pool); }, min_time);
        r.batchPerSec = static_cast<double>(kSamples) / batch_spc;
    }

    // Legacy strategy (pre-refactor behavior): fresh workspace per call
    // (per-node importance lists and dedup flags reallocated every time)
    // and a full std::sort of every partial-sum list.
    cursor = 0;
    const double legacy_spc = secsPerCall(
        [&] {
            path::ExtractionWorkspace fresh;
            fresh.referenceSort = true;
            BitVector out = ex.extract(recs[cursor], fresh);
            cursor = (cursor + 1) % kSamples;
        },
        min_time);
    r.legacyPerSec = 1.0 / legacy_spc;
    return r;
}

struct BackwardBenchResult
{
    double passesPerSec = 0.0;
    std::size_t allocsPerPass = 0;
};

BackwardBenchResult
benchBackward(double min_time)
{
    nn::Network net = extractionNet();
    Rng rng(0xD00D);
    nn::Tensor x(nn::mapShape(3, 32, 32));
    for (std::size_t i = 0; i < x.size(); ++i)
        x[i] = static_cast<float>(rng.uniform());

    nn::Network::Record rec;
    nn::LossGrad lg;
    auto pass = [&] {
        net.forwardInto(x, rec, /*train=*/false);
        nn::softmaxCrossEntropyInto(rec.logits(), 0, lg);
        net.backward(rec, lg.grad); // arena-backed; result stays borrowed
    };

    // Warm until quiescent: the record, loss grad, gradient arena and
    // every pool worker's thread-local gemm scratch must all reach
    // steady state. Worker warm-up is scheduling-dependent (a worker
    // only grows its pack buffer when it first draws a large tile), so
    // require several consecutive allocation-free passes.
    int quiet = 0;
    for (int i = 0; i < 200 && quiet < 3; ++i) {
        const std::size_t before = g_allocs.load(std::memory_order_relaxed);
        pass();
        quiet = g_allocs.load(std::memory_order_relaxed) == before
                    ? quiet + 1
                    : 0;
    }

    BackwardBenchResult r;
    const std::size_t allocs_before =
        g_allocs.load(std::memory_order_relaxed);
    std::size_t calls = 0;
    const double spc = secsPerCall(
        [&] {
            pass();
            ++calls;
        },
        min_time);
    const std::size_t allocs_after = g_allocs.load(std::memory_order_relaxed);
    r.passesPerSec = 1.0 / spc;
    r.allocsPerPass = calls ? (allocs_after - allocs_before) / calls : 0;
    return r;
}

struct TrainBenchResult
{
    double samplesPerSecPooled = 0.0;
    double samplesPerSecSerial = 0.0;
    std::size_t allocsPerEpoch = 0;
    std::size_t numSamples = 0;
    std::size_t gradLanes = 0;
};

/**
 * Data-parallel SGD throughput on the 3conv+2fc net: whole epochs per
 * call through Trainer::trainInto, measured once on the process-wide
 * pool and once pinned to a 1-thread pool (the per-thread baseline the
 * scaling multiplier is read against). The pooled steady state must be
 * allocation-free: all per-slot records, arenas and per-lane gradient
 * clones are warmed by the first call and reused.
 */
TrainBenchResult
benchTrain(double min_time)
{
    nn::Network net = extractionNet();
    data::DatasetSpec spec;
    spec.numClasses = 10;
    spec.imageSize = 32;
    spec.trainPerClass = 8;
    spec.testPerClass = 1;
    spec.seed = 77;
    const auto ds = data::makeSyntheticDataset(spec);

    nn::TrainConfig tc;
    tc.epochs = 1;
    tc.learningRate = 1e-3; // keep weights sane over many timed epochs
    tc.verbose = false;

    TrainBenchResult r;
    r.numSamples = ds.train.size();
    r.gradLanes = std::min<std::size_t>(
        static_cast<std::size_t>(tc.batchSize),
        nn::Trainer::kMaxGradLanes);

    {
        nn::Trainer trainer(tc); // pool = nullptr -> globalPool()
        std::vector<nn::EpochStats> hist;
        // Warm until quiescent (worker thread-locals settle on their
        // own schedule, like the backward bench).
        int quiet = 0;
        for (int i = 0; i < 50 && quiet < 3; ++i) {
            const std::size_t before =
                g_allocs.load(std::memory_order_relaxed);
            trainer.trainInto(net, ds.train, hist);
            quiet = g_allocs.load(std::memory_order_relaxed) == before
                        ? quiet + 1
                        : 0;
        }
        const std::size_t allocs_before =
            g_allocs.load(std::memory_order_relaxed);
        std::size_t calls = 0;
        const double spc = secsPerCall(
            [&] {
                trainer.trainInto(net, ds.train, hist);
                ++calls;
            },
            min_time);
        const std::size_t allocs_after =
            g_allocs.load(std::memory_order_relaxed);
        r.samplesPerSecPooled = static_cast<double>(ds.train.size()) / spc;
        r.allocsPerEpoch =
            calls ? (allocs_after - allocs_before) / calls : 0;
    }

    {
        // Per-thread baseline: a 1-thread trainer pool, with the SGEMM
        // tile fan-out pinned to it as well so nothing rides the global
        // workers.
        ptolemy::ThreadPool serial(1);
        ptolemy::ThreadPool *saved = nn::gemmPool();
        nn::gemmPool() = &serial;
        nn::TrainConfig tc1 = tc;
        tc1.pool = &serial;
        nn::Trainer trainer(tc1);
        std::vector<nn::EpochStats> hist;
        trainer.trainInto(net, ds.train, hist); // warm
        const double spc = secsPerCall(
            [&] { trainer.trainInto(net, ds.train, hist); }, min_time);
        nn::gemmPool() = saved;
        r.samplesPerSecSerial = static_cast<double>(ds.train.size()) / spc;
    }
    return r;
}

struct AttackBenchResult
{
    double bimSerialPerSec = 0.0;
    double bimBatchPerSec = 0.0;
    double pgdSerialPerSec = 0.0;
    double pgdBatchPerSec = 0.0;
    std::size_t allocsPerBatchBim = 0;
    std::size_t allocsPerBatchPgd = 0;
    std::size_t chunk = 0;
    int maxIters = 0;
};

/** One ascent step on the CE loss (the legacy serial loop's step). */
void
signStepRef(nn::Tensor &x, const nn::Tensor &grad, double step)
{
    for (std::size_t i = 0; i < x.size(); ++i) {
        if (grad[i] > 0.0f)
            x[i] += static_cast<float>(step);
        else if (grad[i] < 0.0f)
            x[i] -= static_cast<float>(step);
    }
}

/**
 * The pre-refactor sample-serial BIM loop, kept here as the perf
 * reference the batched engine is compared against: one prediction
 * forward (allocating a fresh Record, as Network::predict does) plus
 * one gradient forward+backward per iteration, then a final
 * prediction forward. The batched engine fuses the prediction check
 * into the gradient pass's record, halving the forwards and running
 * allocation-free.
 */
void
serialLinfRef(nn::Network &net, const nn::Tensor &x, std::size_t label,
              const attack::AttackBudget &budget, nn::Tensor &adv,
              nn::Tensor &grad)
{
    adv = x;
    for (int it = 0; it < budget.maxIters; ++it) {
        if (net.predict(adv) != label)
            break;
        attack::lossInputGradientInto(net, adv, label, grad);
        signStepRef(adv, grad, budget.stepSize);
        attack::clipToEpsBall(adv, x, budget.epsilon);
    }
    volatile bool success = net.predict(adv) != label;
    (void)success;
}

/**
 * Attack-generation throughput on the 3conv+2fc net: a 64-sample
 * candidate chunk (the evaluateSuite chunk size) driven through the
 * batched engine vs the legacy sample-serial loop, for BIM and PGD.
 * The budget is small enough that most candidates use every iteration,
 * so the measurement tracks iteration throughput rather than
 * early-exit luck. The batched steady state must be allocation-free.
 */
AttackBenchResult
benchAttack(double min_time)
{
    nn::Network net = extractionNet();
    constexpr std::size_t kChunk = 64;
    attack::AttackBudget budget;
    budget.epsilon = 0.03;
    budget.stepSize = 0.003;
    budget.maxIters = 12;

    Rng rng(0xA77AC);
    std::vector<nn::Tensor> inputs;
    std::vector<const nn::Tensor *> xs;
    std::vector<std::size_t> labels;
    inputs.reserve(kChunk);
    for (std::size_t s = 0; s < kChunk; ++s) {
        nn::Tensor x(nn::mapShape(3, 32, 32));
        for (std::size_t i = 0; i < x.size(); ++i)
            x[i] = static_cast<float>(rng.uniform());
        inputs.push_back(std::move(x));
    }
    // Label every candidate with its current prediction so the attacks
    // have to do real work to flip it.
    for (auto &x : inputs) {
        xs.push_back(&x);
        labels.push_back(net.predict(x));
    }

    AttackBenchResult r;
    r.chunk = kChunk;
    r.maxIters = budget.maxIters;

    auto measureSerial = [&](auto &&attack_one) {
        return static_cast<double>(kChunk) /
               secsPerCall(
                   [&] {
                       for (std::size_t i = 0; i < kChunk; ++i)
                           attack_one(i);
                   },
                   min_time);
    };
    auto measureBatch = [&](attack::Attack &atk, std::size_t &allocs_out) {
        std::vector<attack::AttackResult> results(kChunk);
        // Warm until quiescent (pool-worker thread-locals settle on
        // their own schedule, like the backward bench).
        int quiet = 0;
        for (int i = 0; i < 50 && quiet < 3; ++i) {
            const std::size_t before =
                g_allocs.load(std::memory_order_relaxed);
            atk.runBatch(net, xs, labels, results, 0);
            quiet = g_allocs.load(std::memory_order_relaxed) == before
                        ? quiet + 1
                        : 0;
        }
        const std::size_t allocs_before =
            g_allocs.load(std::memory_order_relaxed);
        std::size_t calls = 0;
        const double spc = secsPerCall(
            [&] {
                atk.runBatch(net, xs, labels, results, 0);
                ++calls;
            },
            min_time);
        const std::size_t allocs_after =
            g_allocs.load(std::memory_order_relaxed);
        allocs_out = calls ? (allocs_after - allocs_before) / calls : 0;
        return static_cast<double>(kChunk) / spc;
    };

    {
        nn::Tensor adv, grad;
        serialLinfRef(net, inputs[0], labels[0], budget, adv, grad); // warm
        r.bimSerialPerSec = measureSerial([&](std::size_t i) {
            serialLinfRef(net, inputs[i], labels[i], budget, adv, grad);
        });
        attack::Bim bim(budget);
        r.bimBatchPerSec = measureBatch(bim, r.allocsPerBatchBim);
    }
    {
        nn::Tensor adv, grad;
        auto pgd_one = [&](std::size_t i) {
            // Legacy loop from the new engine's random start (keyed by
            // sample index), so both paths do identical work.
            Rng start(attack::sampleKey(0xB0B, i));
            adv = inputs[i];
            for (std::size_t e = 0; e < adv.size(); ++e)
                adv[e] += static_cast<float>(
                    start.uniform(-budget.epsilon, budget.epsilon));
            attack::clipToEpsBall(adv, inputs[i], budget.epsilon);
            for (int it = 0; it < budget.maxIters; ++it) {
                if (net.predict(adv) != labels[i])
                    break;
                attack::lossInputGradientInto(net, adv, labels[i], grad);
                signStepRef(adv, grad, budget.stepSize);
                attack::clipToEpsBall(adv, inputs[i], budget.epsilon);
            }
            volatile bool success = net.predict(adv) != labels[i];
            (void)success;
        };
        pgd_one(0); // warm
        r.pgdSerialPerSec = measureSerial(pgd_one);
        attack::Pgd pgd(budget);
        r.pgdBatchPerSec = measureBatch(pgd, r.allocsPerBatchPgd);
    }
    return r;
}

struct DetectBenchResult
{
    double singleStreamPerSec = 0.0;
    double batchPerSec = 0.0;      ///< serving default (fused per-sample)
    double widePerSec = 0.0;       ///< opt-in wide-batch layer-major path
    double legacyPerSec = 0.0;
    double forwardUsPerDetect = 0.0; ///< cost split: forward (median)
    double forwardUsPerDetectMin = 0.0; ///< spread (fastest trial)
    double forwardUsPerDetectMax = 0.0; ///< spread (slowest trial)
    double forwardNopackUsPerDetect = 0.0; ///< per-call packing forced
    double extractUsPerDetect = 0.0; ///< cost split: path extraction
    double scoreUsPerDetect = 0.0;   ///< cost split: similarity + forest
    std::size_t allocsPerBatch = 0;
    std::size_t allocsPerBatchWide = 0;
    std::size_t chunk = 0;
};

/**
 * End-to-end detection serving throughput on the 3conv+2fc net with a
 * fitted BwCu detector: a 64-request chunk through the fused
 * DetectorSession::detectBatch vs (a) the sequential warmed
 * session.detect loop ("single-stream": what one client serially
 * achieves — on a one-core host the fused batch does the same
 * per-sample math, so the interesting batch multiplier is pool
 * scaling, measured on multi-core hosts) and (b) the legacy per-sample
 * score() serving pipeline the evaluation harness used before the
 * Engine/Session split: a fresh allocating Record per request
 * (Network::forward), a fresh extraction workspace with the
 * reference full-sort selection, and an allocating
 * features->vector->predictProb chain. The batched steady state must
 * be allocation-free.
 */
DetectBenchResult
benchDetect(double min_time)
{
    nn::Network net = extractionNet();
    constexpr std::size_t kChunk = 64;
    constexpr std::size_t kClasses = 10;

    Rng rng(0xDE7EC7);
    std::vector<nn::Tensor> inputs;
    std::vector<const nn::Tensor *> xs;
    inputs.reserve(kChunk);
    for (std::size_t s = 0; s < kChunk; ++s) {
        nn::Tensor x(nn::mapShape(3, 32, 32));
        for (std::size_t i = 0; i < x.size(); ++i)
            x[i] = static_cast<float>(rng.uniform());
        inputs.push_back(std::move(x));
    }
    for (auto &x : inputs)
        xs.push_back(&x);

    // Offline phase: profile class paths on the request inputs (labels
    // = current predictions so every sample aggregates) and fit the
    // forest on clean-vs-noisy feature rows.
    core::DetectorBuilder bld(
        net,
        path::ExtractionConfig::bwCu(
            static_cast<int>(net.weightedNodes().size()), 0.5),
        kClasses);
    {
        nn::Dataset profile;
        nn::Network::Record rec;
        for (const auto &x : inputs)
            profile.push_back({x, net.inferPredict(x, rec)});
        bld.profileClassPaths(profile, /*max_per_class=*/16);
        std::vector<nn::Tensor> noisy;
        for (const auto &x : inputs) {
            nn::Tensor p = x;
            for (std::size_t e = 0; e < p.size(); ++e)
                p[e] += static_cast<float>(rng.uniform(-0.1, 0.1));
            noisy.push_back(std::move(p));
        }
        classify::FeatureMatrix benign, adversarial;
        bld.featuresBatch(inputs, benign);
        bld.featuresBatch(noisy, adversarial);
        bld.fitClassifier(benign, adversarial);
    }
    const core::DetectorModel model = std::move(bld).build();

    DetectBenchResult r;
    r.chunk = kChunk;

    core::DetectorSession sess(model);
    std::vector<core::Decision> out(kChunk);
    const std::span<const nn::Tensor *const> xspan(xs.data(), xs.size());
    const std::span<core::Decision> ospan(out.data(), out.size());

    // Warm until quiescent (pool-worker thread-locals settle on their
    // own schedule, like the other benches), then measure one serving
    // path; repeated for the fused per-sample default and the opt-in
    // wide-batch layer-major path.
    auto measureServing = [&](bool wide, std::size_t &allocs_out) {
        sess.setWideBatch(wide);
        int quiet = 0;
        for (int i = 0; i < 50 && quiet < 3; ++i) {
            const std::size_t before =
                g_allocs.load(std::memory_order_relaxed);
            sess.detectBatch(xspan, ospan);
            quiet = g_allocs.load(std::memory_order_relaxed) == before
                        ? quiet + 1
                        : 0;
        }
        const std::size_t allocs_before =
            g_allocs.load(std::memory_order_relaxed);
        std::size_t calls = 0;
        const double spc = secsPerCall(
            [&] {
                sess.detectBatch(xspan, ospan);
                ++calls;
            },
            min_time);
        const std::size_t allocs_after =
            g_allocs.load(std::memory_order_relaxed);
        allocs_out = calls ? (allocs_after - allocs_before) / calls : 0;
        return static_cast<double>(kChunk) / spc;
    };
    r.batchPerSec = measureServing(/*wide=*/false, r.allocsPerBatch);
    r.widePerSec = measureServing(/*wide=*/true, r.allocsPerBatchWide);
    {
        // First-class cost split of one detection: the wide forward,
        // the path extraction, and the similarity + forest scoring
        // tail, each measured through the same public seams the serving
        // path uses.
        // Packed vs per-call-packing on the same seam, measured with
        // interleaved trials so both arms see the same machine drift.
        // On this small probe net the two schedules land within noise
        // of each other (the fused packed path's win concentrates in
        // wider channel counts — conv_fwd.prepack_speedup above is the
        // stable, hard-gated prepack ratio), so the forward ratio is
        // recorded for visibility but gated as informational.
        std::vector<nn::Network::Record> recs;
        model.network().forwardBatchWide(xspan, recs); // warm + records
        auto fwd = [&] { model.network().forwardBatchWide(xspan, recs); };
        const auto [fwd_spc, fwd_np] = interleavedABSecsPerCall(
            fwd, nn::prepackEnabled(), 2.0 * min_time);
        r.forwardUsPerDetect = fwd_spc.median / kChunk * 1e6;
        r.forwardUsPerDetectMin = fwd_spc.min / kChunk * 1e6;
        r.forwardUsPerDetectMax = fwd_spc.max / kChunk * 1e6;
        r.forwardNopackUsPerDetect = fwd_np.median / kChunk * 1e6;

        path::ExtractionWorkspace ws;
        BitVector pathBits;
        std::size_t cursor = 0;
        model.extractor().extractInto(recs[0], ws, pathBits); // warm
        const double ext_spc =
            medianSecsPerCall(
                [&] {
                    model.extractor().extractInto(recs[cursor], ws, pathBits);
                    cursor = (cursor + 1) % kChunk;
                },
                min_time)
                .median;
        r.extractUsPerDetect = ext_spc * 1e6;

        core::Decision d;
        std::vector<double> feat;
        volatile double sink = 0.0;
        cursor = 0;
        const double score_spc =
            medianSecsPerCall(
                [&] {
                    const std::size_t pred = recs[cursor].predictedClass();
                    path::computeSimilarityInto(
                        pathBits, model.classPaths().classPath(pred),
                        model.extractor().layout(), d.features);
                    d.features.toVectorInto(feat);
                    sink = model.forest().predictProb(feat);
                    cursor = (cursor + 1) % kChunk;
                },
                min_time)
                .median;
        r.scoreUsPerDetect = score_spc * 1e6;
    }
    {
        std::size_t cursor = 0;
        core::Decision d = sess.detect(inputs[0]); // warm
        const double spc = secsPerCall(
            [&] {
                d = sess.detect(inputs[cursor]);
                cursor = (cursor + 1) % kChunk;
            },
            min_time);
        r.singleStreamPerSec = 1.0 / spc;
    }
    {
        // Legacy per-sample score() serving: every request pays a
        // freshly-allocated Record, a fresh reference-sort workspace
        // and the allocating feature chain.
        std::size_t cursor = 0;
        volatile double sink = 0.0;
        const double spc = secsPerCall(
            [&] {
                auto rec = net.forward(inputs[cursor]);
                path::ExtractionWorkspace fresh;
                fresh.referenceSort = true;
                const BitVector path =
                    model.extractor().extract(rec, fresh);
                const auto f = path::computeSimilarity(
                    path,
                    model.classPaths().classPath(rec.predictedClass()),
                    model.extractor().layout());
                sink = model.forest().predictProb(f.toVector());
                cursor = (cursor + 1) % kChunk;
            },
            min_time);
        r.legacyPerSec = 1.0 / spc;
    }
    return r;
}

struct SimWidthResult
{
    std::size_t bits = 0;
    double opsPerSec = 0.0;       ///< active SIMD mode
    double scalarOpsPerSec = 0.0; ///< forced-scalar reference
    double jaccardPerSec = 0.0;   ///< active mode, fused inter+union
};

struct SimilarityBenchResult
{
    SimWidthResult narrow; ///< 4k bits (per-layer segment scale)
    SimWidthResult wide;   ///< 64k bits (full-path scale)
};

SimWidthResult
benchSimilarityWidth(std::size_t bits, double min_time)
{
    // Path-sized bit vectors at realistic densities: activation path
    // ~5% dense, class path ~30% dense.
    Rng rng(0xFACE);
    BitVector p(bits), pc(bits);
    for (std::size_t i = 0; i < bits / 20; ++i)
        p.set(rng.below(bits));
    for (std::size_t i = 0; i < bits * 3 / 10; ++i)
        pc.set(rng.below(bits));

    volatile std::size_t sink = 0;
    volatile double dsink = 0.0;
    SimWidthResult r;
    r.bits = bits;
    r.opsPerSec =
        1.0 /
        secsPerCall([&] { sink = sink + p.andPopcount(pc); }, min_time);
    r.jaccardPerSec =
        1.0 / secsPerCall([&] { dsink = p.jaccard(pc); }, min_time);
    // Forced-scalar reference: same exact counts (popcounts are exact
    // integers), so the ratio is a pure throughput number.
    const SimdMode saved = ptolemy::simdMode();
    ptolemy::simdMode() = SimdMode::Scalar;
    r.scalarOpsPerSec =
        1.0 /
        secsPerCall([&] { sink = sink + p.andPopcount(pc); }, min_time);
    ptolemy::simdMode() = saved;
    return r;
}

SimilarityBenchResult
benchSimilarity(double min_time)
{
    SimilarityBenchResult r;
    r.narrow = benchSimilarityWidth(4096, min_time);
    r.wide = benchSimilarityWidth(std::size_t{1} << 16, min_time);
    return r;
}

/** One compiled program's deterministic co-design metrics. */
struct HwProgramStats
{
    std::size_t instrs = 0;    ///< static program size
    std::size_t codeBytes = 0;
    std::size_t cycles = 0;
    std::size_t executed = 0;  ///< dynamic instruction count
    std::size_t dramBytes = 0;
};

struct HwBenchResult
{
    std::size_t inferenceCycles = 0;
    HwProgramStats all, noNeuron, noLayer, noRecompute, none, batch8;
    std::size_t psumCountStore = 0;
    std::size_t maskBits = 0;
    std::size_t recomputePsums = 0;
    std::size_t extraDramStore = 0;
    std::size_t extraDramRecompute = 0;
    std::size_t mixInference = 0;
    std::size_t mixPath = 0;
    std::size_t mixCls = 0;
    std::size_t mixOther = 0;
};

/**
 * Hardware co-design probe: the extraction net's BwCu workload through
 * the compiler (every optimization-pass combination plus the batch-8
 * program) and the cycle-level simulator on baseline hardware. Unlike
 * every other section this measures no wall clock — cycle counts,
 * instruction counts and DRAM footprints are pure functions of the
 * deterministic profiled trace, so the gate compares them EXACTLY (any
 * drift is a real change in compiler output or the timing model, not
 * noise).
 */
HwBenchResult
benchHw()
{
    nn::Network net = extractionNet();
    const auto cfg = path::ExtractionConfig::bwCu(
        static_cast<int>(net.weightedNodes().size()), 0.5);
    path::PathExtractor ex(net, cfg);

    // Profiled workload: the batched profiling entry point (bit-identical
    // to sequential tracing at any pool size).
    Rng rng(0x51CA7);
    std::vector<nn::Tensor> xs;
    xs.reserve(8);
    for (int s = 0; s < 8; ++s) {
        nn::Tensor x(nn::mapShape(3, 32, 32));
        for (std::size_t i = 0; i < x.size(); ++i)
            x[i] = static_cast<float>(rng.uniform());
        xs.push_back(std::move(x));
    }
    std::vector<nn::Network::Record> recs;
    net.forwardBatch(xs, recs);
    const auto trace = ex.profileBatch(recs, &ptolemy::globalPool());

    const hw::HwConfig hc = hw::HwConfig::baseline();
    hw::Simulator sim(hc);

    auto stats = [&](const compiler::CompileOptions &opts) {
        const auto prog = compiler::Compiler(net, cfg, opts).compile(trace);
        const auto rep = sim.run(prog);
        HwProgramStats s;
        s.instrs = prog.size();
        s.codeBytes = prog.codeBytes();
        s.cycles = static_cast<std::size_t>(rep.cycles);
        s.executed = static_cast<std::size_t>(rep.instructionsExecuted);
        s.dramBytes = static_cast<std::size_t>(rep.dramBytes);
        return s;
    };

    HwBenchResult r;
    r.inferenceCycles = static_cast<std::size_t>(
        sim.run(compiler::Compiler::inferenceOnly(net)).cycles);

    compiler::CompileOptions all;
    r.all = stats(all);
    compiler::CompileOptions no_neuron = all;
    no_neuron.neuronPipelining = false;
    r.noNeuron = stats(no_neuron);
    compiler::CompileOptions no_layer = all;
    no_layer.layerPipelining = false;
    r.noLayer = stats(no_layer);
    compiler::CompileOptions no_recompute = all;
    no_recompute.recomputePsums = false;
    r.noRecompute = stats(no_recompute);
    compiler::CompileOptions none;
    none.neuronPipelining = false;
    none.layerPipelining = false;
    none.recomputePsums = false;
    r.none = stats(none);
    compiler::CompileOptions batch8 = all;
    batch8.batchSize = 8;
    r.batch8 = stats(batch8);

    const auto fp_store =
        compiler::Compiler(net, cfg, no_recompute).dramFootprint(trace);
    const auto fp_rec =
        compiler::Compiler(net, cfg, all).dramFootprint(trace);
    r.psumCountStore = fp_store.psumCount;
    r.maskBits = fp_store.maskBits;
    r.recomputePsums = fp_rec.recomputePsums;
    r.extraDramStore = hw::extraDramBytes(hc, fp_store.psumCount,
                                          fp_store.maskBits,
                                          fp_store.recomputePsums);
    r.extraDramRecompute = hw::extraDramBytes(hc, fp_rec.psumCount,
                                              fp_rec.maskBits,
                                              fp_rec.recomputePsums);

    const auto prog = compiler::Compiler(net, cfg, all).compile(trace);
    for (std::size_t i = 0; i < prog.size(); ++i) {
        switch (isa::opcodeClass(prog.instruction(i).op)) {
          case isa::InstrClass::Inference: ++r.mixInference; break;
          case isa::InstrClass::PathConstruction: ++r.mixPath; break;
          case isa::InstrClass::Classification: ++r.mixCls; break;
          default: ++r.mixOther; break;
        }
    }
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string out_path = argc > 1 ? argv[1] : "BENCH_micro.json";
    const double min_time = minMeasureTime();

    const auto conv = benchConv(min_time);
    const auto ext = benchExtraction(min_time);
    const auto bwd = benchBackward(min_time);
    const auto trn = benchTrain(min_time);
    const auto atk = benchAttack(min_time);
    const auto det = benchDetect(min_time);
    const auto sim = benchSimilarity(min_time);
    const auto hwb = benchHw();

    const unsigned threads = ptolemy::globalPool().size();
    const unsigned cores = std::thread::hardware_concurrency();

    std::ofstream os(out_path);
    if (!os) {
        std::cerr << "FAIL: cannot open " << out_path << " for writing\n";
        return 1;
    }
    ptolemy::JsonWriter j(os);
    j.beginObject();
    j.kv("bench", "perf_smoke");
    j.key("env").beginObject();
    j.kv("threads", static_cast<std::size_t>(threads));
    j.kv("cores", static_cast<std::size_t>(cores));
    j.kv("simd", nn::simdModeName());
    j.kv("naive_conv_env", nn::naiveConvFlag() ? 1 : 0);
    j.endObject();
    j.key("conv_fwd").beginObject();
    j.kv("shape", "64->64ch 32x32 k3 s1 p1");
    j.kv("gemm_gflops", conv.gemmGflops);
    j.kv("gemm_gflops_trial_min", conv.gemmGflopsMin);
    j.kv("gemm_gflops_trial_max", conv.gemmGflopsMax);
    j.kv("nopack_gflops", conv.nopackGflops);
    j.kv("prepack_speedup", conv.gemmGflops / conv.nopackGflops);
    j.kv("naive_gflops", conv.naiveGflops);
    j.kv("speedup", conv.gemmGflops / conv.naiveGflops);
    j.endObject();
    j.key("extraction_bwcu").beginObject();
    j.kv("model", "3conv+2fc on 3x32x32, theta=0.5");
    j.kv("samples", ext.numSamples);
    j.kv("extractions_per_sec", ext.newPerSec);
    j.kv("batch_extractions_per_sec", ext.batchPerSec);
    j.kv("legacy_extractions_per_sec", ext.legacyPerSec);
    j.kv("speedup", ext.newPerSec / ext.legacyPerSec);
    j.kv("allocs_per_extract", ext.allocsPerExtract);
    j.kv("path_bits_last", ext.pathBits);
    j.endObject();
    j.key("backward").beginObject();
    j.kv("model", "3conv+2fc on 3x32x32, fwd+softmaxCE+bwd");
    j.kv("passes_per_sec", bwd.passesPerSec);
    j.kv("allocs_per_pass", bwd.allocsPerPass);
    j.endObject();
    j.key("train").beginObject();
    j.kv("model", "3conv+2fc on 3x32x32, SGD batch 16");
    j.kv("samples", trn.numSamples);
    j.kv("samples_per_sec", trn.samplesPerSecPooled);
    j.kv("samples_per_sec_1thread", trn.samplesPerSecSerial);
    j.kv("speedup_vs_1thread",
         trn.samplesPerSecPooled / trn.samplesPerSecSerial);
    j.kv("grad_lanes", trn.gradLanes);
    j.kv("allocs_per_epoch", trn.allocsPerEpoch);
    j.endObject();
    j.key("attack").beginObject();
    j.kv("model", "3conv+2fc on 3x32x32, 64-sample chunk");
    j.kv("chunk", atk.chunk);
    j.kv("max_iters", static_cast<std::size_t>(atk.maxIters));
    j.kv("bim_serial_per_sec", atk.bimSerialPerSec);
    j.kv("bim_batch_per_sec", atk.bimBatchPerSec);
    j.kv("bim_speedup", atk.bimBatchPerSec / atk.bimSerialPerSec);
    j.kv("pgd_serial_per_sec", atk.pgdSerialPerSec);
    j.kv("pgd_batch_per_sec", atk.pgdBatchPerSec);
    j.kv("pgd_speedup", atk.pgdBatchPerSec / atk.pgdSerialPerSec);
    j.kv("allocs_per_batch_bim", atk.allocsPerBatchBim);
    j.kv("allocs_per_batch_pgd", atk.allocsPerBatchPgd);
    j.endObject();
    j.key("detect").beginObject();
    j.kv("model", "3conv+2fc on 3x32x32, BwCu theta=0.5, 64-request chunk");
    j.kv("chunk", det.chunk);
    j.kv("single_stream_per_sec", det.singleStreamPerSec);
    j.kv("batch_per_sec", det.batchPerSec);
    j.kv("wide_batch_per_sec", det.widePerSec);
    j.kv("legacy_per_sec", det.legacyPerSec);
    j.kv("batch_speedup_vs_single_stream",
         det.batchPerSec / det.singleStreamPerSec);
    j.kv("batch_speedup_vs_legacy", det.batchPerSec / det.legacyPerSec);
    j.kv("wide_speedup_vs_fused", det.widePerSec / det.batchPerSec);
    {
        const double total = det.forwardUsPerDetect + det.extractUsPerDetect +
                             det.scoreUsPerDetect;
        j.kv("forward_us_per_detect", det.forwardUsPerDetect);
        j.kv("forward_us_per_detect_trial_min", det.forwardUsPerDetectMin);
        j.kv("forward_us_per_detect_trial_max", det.forwardUsPerDetectMax);
        j.kv("forward_nopack_us_per_detect", det.forwardNopackUsPerDetect);
        j.kv("forward_prepack_speedup",
             det.forwardNopackUsPerDetect / det.forwardUsPerDetect);
        j.kv("extract_us_per_detect", det.extractUsPerDetect);
        j.kv("score_us_per_detect", det.scoreUsPerDetect);
        j.kv("forward_frac", det.forwardUsPerDetect / total);
        j.kv("extract_frac", det.extractUsPerDetect / total);
        j.kv("score_frac", det.scoreUsPerDetect / total);
    }
    j.kv("allocs_per_batch", det.allocsPerBatch);
    j.kv("allocs_per_batch_wide", det.allocsPerBatchWide);
    j.endObject();
    j.key("similarity").beginObject();
    j.kv("densities", "path ~5% vs class path ~30%");
    for (const auto *w : {&sim.narrow, &sim.wide}) {
        j.key(w->bits == 4096 ? "w4096" : "w65536").beginObject();
        j.kv("bits", w->bits);
        j.kv("and_popcount_ops_per_sec", w->opsPerSec);
        j.kv("scalar_ops_per_sec", w->scalarOpsPerSec);
        j.kv("avx2_vs_scalar", w->opsPerSec / w->scalarOpsPerSec);
        j.kv("jaccard_ops_per_sec", w->jaccardPerSec);
        j.endObject();
    }
    j.endObject();
    // Deterministic co-design block: every value is an exact integer
    // (cycles, instruction counts, bytes) gated with zero noise band by
    // tools/bench_compare.py — see benchHw().
    j.key("hw").beginObject();
    j.kv("model", "3conv+2fc on 3x32x32, BwCu theta=0.5, baseline hw");
    j.kv("inference_cycles", hwb.inferenceCycles);
    {
        const struct
        {
            const char *name;
            const HwProgramStats *s;
        } progs[] = {{"opt_all", &hwb.all},
                     {"opt_no_neuron", &hwb.noNeuron},
                     {"opt_no_layer", &hwb.noLayer},
                     {"opt_no_recompute", &hwb.noRecompute},
                     {"opt_none", &hwb.none},
                     {"batch8", &hwb.batch8}};
        for (const auto &p : progs) {
            j.key(p.name).beginObject();
            j.kv("instrs", p.s->instrs);
            j.kv("code_bytes", p.s->codeBytes);
            j.kv("cycles", p.s->cycles);
            j.kv("instructions_executed", p.s->executed);
            j.kv("dram_bytes", p.s->dramBytes);
            j.endObject();
        }
    }
    j.key("dram").beginObject();
    j.kv("psum_count_store", hwb.psumCountStore);
    j.kv("mask_bits", hwb.maskBits);
    j.kv("recompute_psums", hwb.recomputePsums);
    j.kv("extra_bytes_store", hwb.extraDramStore);
    j.kv("extra_bytes_recompute", hwb.extraDramRecompute);
    j.endObject();
    j.key("instr_mix").beginObject();
    j.kv("inference", hwb.mixInference);
    j.kv("path_construction", hwb.mixPath);
    j.kv("classification", hwb.mixCls);
    j.kv("other", hwb.mixOther);
    j.endObject();
    j.endObject();
    j.endObject();
    os << "\n";
    os.close();
    if (!os) {
        std::cerr << "FAIL: error writing " << out_path << "\n";
        return 1;
    }

    std::cout << "env: " << threads << " threads on " << cores
              << " cores, simd " << nn::simdModeName() << "\n"
              << "conv fwd (64->64ch 32x32 k3): gemm " << conv.gemmGflops
              << " GFLOP/s packed (" << conv.nopackGflops
              << " unpacked, " << conv.gemmGflops / conv.nopackGflops
              << "x; trial spread " << conv.gemmGflopsMin << ".."
              << conv.gemmGflopsMax << "), naive " << conv.naiveGflops
              << " GFLOP/s (" << conv.gemmGflops / conv.naiveGflops
              << "x)\n"
              << "extraction BwCu: " << ext.newPerSec
              << " extractions/s single-stream, " << ext.batchPerSec
              << "/s batched (legacy " << ext.legacyPerSec << "/s, "
              << ext.newPerSec / ext.legacyPerSec << "x), "
              << ext.allocsPerExtract << " allocs per extract\n"
              << "backward: " << bwd.passesPerSec
              << " fwd+bwd passes/s, " << bwd.allocsPerPass
              << " allocs per pass\n"
              << "train: " << trn.samplesPerSecPooled
              << " samples/s pooled, " << trn.samplesPerSecSerial
              << "/s on 1 thread ("
              << trn.samplesPerSecPooled / trn.samplesPerSecSerial
              << "x, " << trn.gradLanes << " grad lanes), "
              << trn.allocsPerEpoch << " allocs per epoch\n"
              << "attack (chunk " << atk.chunk << ", " << atk.maxIters
              << " iters): BIM " << atk.bimBatchPerSec
              << " attacks/s batched vs " << atk.bimSerialPerSec
              << "/s serial (" << atk.bimBatchPerSec / atk.bimSerialPerSec
              << "x), PGD " << atk.pgdBatchPerSec << " vs "
              << atk.pgdSerialPerSec << " ("
              << atk.pgdBatchPerSec / atk.pgdSerialPerSec << "x), "
              << atk.allocsPerBatchBim << "/" << atk.allocsPerBatchPgd
              << " allocs per batch\n"
              << "detect (chunk " << det.chunk << "): "
              << det.batchPerSec << " detections/s fused vs "
              << det.widePerSec << "/s wide-batch ("
              << det.widePerSec / det.batchPerSec << "x), "
              << det.singleStreamPerSec << "/s single-stream, "
              << det.legacyPerSec << "/s legacy per-sample score ("
              << det.batchPerSec / det.legacyPerSec << "x), "
              << det.allocsPerBatch << "/" << det.allocsPerBatchWide
              << " allocs per batch (fused/wide)\n"
              << "detect cost split: forward " << det.forwardUsPerDetect
              << " us packed (" << det.forwardNopackUsPerDetect
              << " us unpacked, "
              << det.forwardNopackUsPerDetect / det.forwardUsPerDetect
              << "x), extract " << det.extractUsPerDetect << " us, score "
              << det.scoreUsPerDetect << " us per detection\n"
              << "similarity and+popcount: 4096 bits "
              << sim.narrow.opsPerSec << " ops/s (scalar "
              << sim.narrow.scalarOpsPerSec << ", "
              << sim.narrow.opsPerSec / sim.narrow.scalarOpsPerSec
              << "x), 65536 bits " << sim.wide.opsPerSec << " ops/s (scalar "
              << sim.wide.scalarOpsPerSec << ", "
              << sim.wide.opsPerSec / sim.wide.scalarOpsPerSec << "x)\n"
              << "hw co-design: inference " << hwb.inferenceCycles
              << " cycles, BwCu all-passes " << hwb.all.cycles
              << " cycles (" << hwb.all.instrs << " instrs), batch-8 "
              << hwb.batch8.cycles << " cycles ("
              << hwb.batch8.cycles / 8 << "/detection), no-passes "
              << hwb.none.cycles << " cycles\n"
              << "wrote " << out_path << "\n";
    if (ext.allocsPerExtract != 0) {
        std::cerr << "FAIL: steady-state extract loop performed "
                  << ext.allocsPerExtract << " heap allocations per call "
                  << "(expected 0)\n";
        return 1;
    }
    if (bwd.allocsPerPass != 0) {
        std::cerr << "FAIL: steady-state backward loop performed "
                  << bwd.allocsPerPass << " heap allocations per pass "
                  << "(expected 0)\n";
        return 1;
    }
    if (trn.allocsPerEpoch != 0) {
        std::cerr << "FAIL: steady-state parallel training loop performed "
                  << trn.allocsPerEpoch << " heap allocations per epoch "
                  << "(expected 0)\n";
        return 1;
    }
    if (atk.allocsPerBatchBim != 0 || atk.allocsPerBatchPgd != 0) {
        std::cerr << "FAIL: steady-state batched attack loop performed "
                  << atk.allocsPerBatchBim << " (BIM) / "
                  << atk.allocsPerBatchPgd << " (PGD) heap allocations "
                  << "per batch (expected 0)\n";
        return 1;
    }
    if (det.allocsPerBatch != 0 || det.allocsPerBatchWide != 0) {
        std::cerr << "FAIL: steady-state detectBatch serving loop "
                  << "performed " << det.allocsPerBatch << " (fused) / "
                  << det.allocsPerBatchWide
                  << " (wide) heap allocations per batch (expected 0)\n";
        return 1;
    }
    return 0;
}
