/**
 * @file
 * Fig. 14 — detection accuracy of adaptive adversarial inputs as a
 * function of distortion (MSE).
 *
 * Paper shape: each point is the average detection accuracy over all
 * adaptive samples with distortion <= x; accuracy drifts slightly
 * downward as distortion grows, but the correlation is weak because the
 * absolute distortions are small.
 */

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <memory>

#include "attack/adaptive.hh"
#include "common/workspace.hh"
#include "util/stats.hh"
#include "util/table.hh"

using namespace ptolemy;

int
main()
{
    std::printf("=== Fig. 14: detection accuracy vs adaptive-attack "
                "distortion ===\n\n");
    auto &b = bench::getBundle("alexnet100");
    const int n = static_cast<int>(b.net.weightedNodes().size());
    auto bld =
        bench::makeBuilder(b, path::ExtractionConfig::bwCu(n, 0.5));
    core::DetectorSession sess(bld->model());

    // Pool all adaptive attack strengths so the distortion axis is
    // populated (cached from fig13 when it ran first).
    std::vector<core::DetectionPair> pairs;
    for (int at_n : {1, 2, 3, 8}) {
        attack::AdaptiveActivationAttack atk(at_n, &b.data.train, 5, 50,
                                             0.08);
        for (auto &p : bench::getPairs(b, atk, 50))
            pairs.push_back(std::move(p));
    }
    const auto scored = core::fitAndScore(*bld, sess, pairs, 0.5);

    // Cumulative accuracy at distortion <= x, like the paper's plot.
    std::vector<double> mses;
    for (const auto &s : scored.heldOut)
        if (s.label == 1)
            mses.push_back(s.mse);
    std::sort(mses.begin(), mses.end());

    Table t("Fig. 14: avg detection AUC over adaptive samples with "
            "MSE <= x");
    t.header({"MSE <= x", "samples", "AUC"});
    for (double q : {0.25, 0.5, 0.75, 1.0}) {
        const double x = mses.empty()
            ? 0.0
            : mses[static_cast<std::size_t>((mses.size() - 1) * q)];
        std::vector<double> scores;
        std::vector<int> labels;
        std::size_t n_adv = 0;
        for (const auto &s : scored.heldOut) {
            if (s.label == 1 && s.mse > x)
                continue;
            scores.push_back(s.score);
            labels.push_back(s.label);
            n_adv += s.label;
        }
        t.row({fmt(x, 4), std::to_string(n_adv),
               fmt(aucScore(scores, labels), 3)});
    }
    t.print(std::cout);
    return 0;
}
