/**
 * @file
 * Extension experiment (paper Sec. VIII) — Ptolemy as a transient-fault
 * detector: single-event upsets injected into feature maps during
 * inference; mispredicting faulty executions should be rejected by the
 * same canary-path detector that catches adversarial inputs, with few
 * false alarms on masked faults.
 */

#include <cstdio>
#include <iostream>

#include "attack/gradient_attacks.hh"
#include "common/workspace.hh"
#include "core/fault_injection.hh"
#include "util/table.hh"

using namespace ptolemy;

int
main()
{
    std::printf("=== Extension: transient-fault (SEU) detection ===\n\n");
    auto &b = bench::getBundle("alexnet100");
    const int n = static_cast<int>(b.net.weightedNodes().size());

    Table t("SEU campaign per variant (300 injections, exponent bits "
            "24-30)");
    // "Flagged masked faults" are executions whose prediction survived
    // but whose activation path was still visibly corrupted — arguably
    // useful alarms for a reliability monitor, counted separately.
    t.header({"variant", "mispredicting faults", "detected", "rate",
              "flagged masked faults"});

    const auto variants = bench::makeVariants(b);
    const std::pair<const char *, const path::ExtractionConfig *> rows[] = {
        {"BwCu", &variants.bwCu}, {"FwAb", &variants.fwAb}};
    for (const auto &[name, cfg] : rows) {
        auto bld = bench::makeBuilder(b, *cfg);
        core::DetectorSession sess(bld->model());
        attack::Fgsm fgsm;
        auto pairs = bench::getPairs(b, fgsm, 80);
        core::fitAndScore(*bld, sess, pairs, 0.5);
        const auto res = core::runFaultCampaign(sess, b.data.test, 300);
        t.row({name, std::to_string(res.mispredictions),
               std::to_string(res.detected), fmtPct(res.detectionRate()),
               std::to_string(res.falseAlarms)});
    }
    t.print(std::cout);
    return 0;
}
