/**
 * @file
 * Sec. VII-A — area overhead and DRAM space accounting.
 *
 * Paper: Ptolemy adds 5.2% area (0.08 mm²): 3.9% SRAM, 0.4% MAC
 * augmentation, 0.9% other logic. Extra DRAM: AlexNet 1.6 MB and
 * ResNet18 2.2 MB under BwAb/FwAb masks; VGG19 18.5 MB (13x larger model,
 * still small); with the recompute optimization BwCu needs 12.8 / 17.6 /
 * 148 MB. Expected reproduction shape: same area fractions (the area
 * model is calibrated, the *accounting* is computed), mask storage ≪
 * psum storage, recompute ≪ store-all, and DRAM needs that scale with
 * model size.
 */

#include <cstdio>
#include <iostream>

#include "common/workspace.hh"
#include "hw/area.hh"
#include "util/table.hh"

using namespace ptolemy;

int
main()
{
    std::printf("=== Sec. VII-A: area and DRAM overhead ===\n\n");

    const auto area = hw::areaBreakdown(hw::HwConfig::baseline());
    Table t("Area overhead on the baseline accelerator "
            "(paper: 5.2%% total = 3.9%% SRAM + 0.4%% MAC + 0.9%% logic)");
    t.header({"component", "mm^2", "fraction of baseline"});
    t.row({"baseline accelerator", fmt(area.baselineMm2, 3), "-"});
    t.row({"extra SRAM (psum/mask + path constructor)",
           fmt(area.extraSramMm2, 3), fmtPct(area.sramFraction)});
    t.row({"MAC-unit augmentation", fmt(area.macAugmentMm2, 3),
           fmtPct(area.macFraction)});
    t.row({"sort/merge/accumulate/mask logic", fmt(area.otherLogicMm2, 3),
           fmtPct(area.logicFraction)});
    t.row({"total Ptolemy overhead", fmt(area.totalOverheadMm2, 3),
           fmtPct(area.overheadFraction)});
    t.print(std::cout);

    Table d("Extra DRAM space per model "
            "(paper: masks 1.6-18.5 MB, BwCu+recompute 12.8-148 MB)");
    d.header({"model", "masks (BwAb/FwAb)", "BwCu + recompute",
              "BwCu store-all (no opt.)"});
    const hw::HwConfig hc = hw::HwConfig::baseline();
    for (const char *name : {"alexnet100", "resnet18c100", "vgg16c10"}) {
        auto &b = bench::getBundle(name);
        const int n = static_cast<int>(b.net.weightedNodes().size());

        auto ab_cfg = bench::calibrated(
            b, path::ExtractionConfig::bwAb(n), 0.05);
        const auto ab_trace = bench::profileTrace(b, ab_cfg);
        compiler::Compiler ab_comp(b.net, ab_cfg);
        const auto ab_fp = ab_comp.dramFootprint(ab_trace);

        const auto cu_cfg = path::ExtractionConfig::bwCu(n, 0.5);
        const auto cu_trace = bench::profileTrace(b, cu_cfg);
        compiler::CompileOptions rec;
        rec.recomputePsums = true;
        compiler::CompileOptions store;
        store.recomputePsums = false;
        const auto rec_fp =
            compiler::Compiler(b.net, cu_cfg, rec).dramFootprint(cu_trace);
        const auto store_fp =
            compiler::Compiler(b.net, cu_cfg, store)
                .dramFootprint(cu_trace);

        auto kb = [&](const compiler::DramFootprint &fp) {
            return fmt(hw::extraDramBytes(hc, fp.psumCount, fp.maskBits,
                                          fp.recomputePsums) / 1024.0, 1) +
                   " KB";
        };
        d.row({name, kb(ab_fp), kb(rec_fp), kb(store_fp)});
    }
    d.print(std::cout);
    std::printf("(Mini models: absolute sizes are KB instead of the "
                "paper's MB; the ratios between columns are the "
                "reproduced result.)\n");
    return 0;
}
