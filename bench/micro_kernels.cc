/**
 * @file
 * Google-benchmark microbenchmarks of the hot kernels: path bit-vector
 * ops (the online similarity computation), important-neuron extraction,
 * random-forest classification and the cycle-level simulator itself.
 */

#include <benchmark/benchmark.h>

#include <memory>

#include "classify/random_forest.hh"
#include "compiler/compiler.hh"
#include "hw/simulator.hh"
#include "nn/common_layers.hh"
#include "nn/conv.hh"
#include "nn/init.hh"
#include "nn/linear.hh"
#include "path/extractor.hh"
#include "util/bitvector.hh"
#include "util/rng.hh"

using namespace ptolemy;

namespace
{

BitVector
randomBits(std::size_t n, double density, std::uint64_t seed)
{
    Rng rng(seed);
    BitVector v(n);
    for (std::size_t i = 0; i < static_cast<std::size_t>(n * density); ++i)
        v.set(rng.below(n));
    return v;
}

void
BM_BitVectorAndPopcount(benchmark::State &state)
{
    const std::size_t n = state.range(0);
    const auto a = randomBits(n, 0.05, 1);
    const auto b = randomBits(n, 0.3, 2);
    for (auto _ : state)
        benchmark::DoNotOptimize(a.andPopcount(b));
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BitVectorAndPopcount)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void
BM_ClassPathAggregate(benchmark::State &state)
{
    const std::size_t n = state.range(0);
    auto cls = randomBits(n, 0.3, 3);
    const auto p = randomBits(n, 0.05, 4);
    for (auto _ : state) {
        cls |= p;
        benchmark::DoNotOptimize(cls.rawWords().data());
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ClassPathAggregate)->Arg(1 << 16)->Arg(1 << 20);

/** Small trained-shape CNN for extraction benchmarks. */
nn::Network &
benchNet()
{
    static nn::Network net = [] {
        nn::Network n("bench", nn::mapShape(3, 16, 16));
        n.add(std::make_unique<nn::Conv2d>("c1", 3, 8, 3, 1, 1));
        n.add(std::make_unique<nn::ReLU>("r1"));
        n.add(std::make_unique<nn::MaxPool2d>("p1", 2));
        n.add(std::make_unique<nn::Conv2d>("c2", 8, 16, 3, 1, 1));
        n.add(std::make_unique<nn::ReLU>("r2"));
        n.add(std::make_unique<nn::MaxPool2d>("p2", 2));
        n.add(std::make_unique<nn::Flatten>("f"));
        n.add(std::make_unique<nn::Linear>("fc", 256, 10));
        nn::heInit(n, 3);
        return n;
    }();
    return net;
}

void
BM_ForwardPass(benchmark::State &state)
{
    auto &net = benchNet();
    nn::Tensor x(nn::mapShape(3, 16, 16));
    Rng rng(5);
    for (std::size_t i = 0; i < x.size(); ++i)
        x[i] = static_cast<float>(rng.uniform());
    for (auto _ : state) {
        auto rec = net.forward(x);
        benchmark::DoNotOptimize(rec.logits().data());
    }
}
BENCHMARK(BM_ForwardPass);

void
BM_BackwardCumulativeExtraction(benchmark::State &state)
{
    auto &net = benchNet();
    const double theta = state.range(0) / 10.0;
    path::PathExtractor ex(
        net, path::ExtractionConfig::bwCu(
                 static_cast<int>(net.weightedNodes().size()), theta));
    nn::Tensor x(nn::mapShape(3, 16, 16));
    Rng rng(6);
    for (std::size_t i = 0; i < x.size(); ++i)
        x[i] = static_cast<float>(rng.uniform());
    auto rec = net.forward(x);
    for (auto _ : state)
        benchmark::DoNotOptimize(ex.extract(rec));
}
BENCHMARK(BM_BackwardCumulativeExtraction)->Arg(1)->Arg(5)->Arg(9);

void
BM_ForwardAbsoluteExtraction(benchmark::State &state)
{
    auto &net = benchNet();
    path::PathExtractor ex(
        net, path::ExtractionConfig::fwAb(
                 static_cast<int>(net.weightedNodes().size()), 0.2));
    nn::Tensor x(nn::mapShape(3, 16, 16));
    Rng rng(7);
    for (std::size_t i = 0; i < x.size(); ++i)
        x[i] = static_cast<float>(rng.uniform());
    auto rec = net.forward(x);
    for (auto _ : state)
        benchmark::DoNotOptimize(ex.extract(rec));
}
BENCHMARK(BM_ForwardAbsoluteExtraction);

void
BM_RandomForestPredict(benchmark::State &state)
{
    Rng rng(8);
    classify::FeatureMatrix xs;
    std::vector<int> ys;
    for (int i = 0; i < 400; ++i) {
        xs.push_back({rng.uniform(), rng.uniform(), rng.uniform(),
                      rng.uniform(), rng.uniform()});
        ys.push_back(rng.bernoulli(0.5) ? 1 : 0);
    }
    classify::RandomForest rf;
    rf.fit(xs, ys);
    for (auto _ : state)
        benchmark::DoNotOptimize(rf.predictProb(xs[0]));
}
BENCHMARK(BM_RandomForestPredict);

void
BM_CycleSimulatorBwCu(benchmark::State &state)
{
    auto &net = benchNet();
    const auto cfg = path::ExtractionConfig::bwCu(
        static_cast<int>(net.weightedNodes().size()), 0.5);
    path::PathExtractor ex(net, cfg);
    nn::Tensor x(nn::mapShape(3, 16, 16));
    Rng rng(9);
    for (std::size_t i = 0; i < x.size(); ++i)
        x[i] = static_cast<float>(rng.uniform());
    auto rec = net.forward(x);
    path::ExtractionTrace trace;
    ex.extract(rec, &trace);
    compiler::Compiler comp(net, cfg);
    const auto prog = comp.compile(trace);
    hw::Simulator sim;
    for (auto _ : state)
        benchmark::DoNotOptimize(sim.run(prog).cycles);
}
BENCHMARK(BM_CycleSimulatorBwCu);

} // namespace

BENCHMARK_MAIN();
