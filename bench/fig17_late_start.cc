/**
 * @file
 * Fig. 17 — late start of FwAb on the AlexNet-class model.
 *
 * Paper shape: accuracy increases when extraction starts earlier (more
 * layers); latency is essentially flat because forward extraction hides
 * behind inference; starting later trims energy (~8.4% from latest to
 * earliest in the paper) because less extraction work is done.
 */

#include <cstdio>
#include <iostream>

#include "attack/gradient_attacks.hh"
#include "common/workspace.hh"
#include "util/table.hh"

using namespace ptolemy;

int
main()
{
    std::printf("=== Fig. 17: FwAb late start (AlexNet-class, 8 weighted "
                "layers) ===\n\n");
    auto &b = bench::getBundle("alexnet100");
    const int n = static_cast<int>(b.net.weightedNodes().size());
    attack::Fgsm fgsm;
    auto pairs = bench::getPairs(b, fgsm, 120);
    const auto base = bench::makeVariants(b).fwAb;

    Table t("Fig. 17: accuracy / latency / energy vs start layer "
            "(1 = extract everything)");
    t.header({"start layer", "layers extracted", "AUC", "Latency",
              "Energy"});

    for (int start = n; start >= 1; --start) {
        auto cfg = base;
        cfg.selectFrom(start - 1);
        auto bld = bench::makeBuilder(b, cfg);
        core::DetectorSession sess(bld->model());
        const double auc = core::fitAndScore(*bld, sess, pairs, 0.5).auc;
        const auto cost = bench::costOf(b, cfg);
        t.row({std::to_string(start), std::to_string(n - start + 1),
               fmt(auc, 3), fmt(cost.latencyXNoCls, 3) + "x",
               fmt(cost.energyXNoCls, 3) + "x"});
    }
    t.print(std::cout);
    std::printf("(Expected: latency column nearly flat — forward "
                "extraction is hidden behind inference.)\n");
    return 0;
}
