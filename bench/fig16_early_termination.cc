/**
 * @file
 * Fig. 16 — early termination of BwCu on the AlexNet-class model.
 *
 * Paper shape: accuracy increases as extraction terminates later (more
 * layers extracted) and plateaus beyond ~3 extracted layers; extracting
 * everything costs ~11.2x more latency and 6.6x more energy than
 * extracting the last 3 layers.
 */

#include <cstdio>
#include <iostream>

#include "attack/gradient_attacks.hh"
#include "common/workspace.hh"
#include "util/table.hh"

using namespace ptolemy;

int
main()
{
    std::printf("=== Fig. 16: BwCu early termination (AlexNet-class, "
                "8 weighted layers) ===\n\n");
    auto &b = bench::getBundle("alexnet100");
    const int n = static_cast<int>(b.net.weightedNodes().size());
    attack::Fgsm fgsm;
    auto pairs = bench::getPairs(b, fgsm, 120);

    Table t("Fig. 16: accuracy / latency / energy vs termination layer "
            "(1 = extract everything, like the paper's x-axis)");
    t.header({"termination layer", "layers extracted", "AUC", "Latency",
              "Energy"});

    // Termination layer L in the paper's 1-based numbering means
    // extraction runs from layer 8 down to L.
    for (int term = n; term >= 1; --term) {
        auto cfg = path::ExtractionConfig::bwCu(n, 0.5);
        cfg.selectFrom(term - 1);
        auto bld = bench::makeBuilder(b, cfg);
        core::DetectorSession sess(bld->model());
        const double auc = core::fitAndScore(*bld, sess, pairs, 0.5).auc;
        const auto cost = bench::costOf(b, cfg);
        t.row({std::to_string(term), std::to_string(n - term + 1),
               fmt(auc, 3), fmtX(cost.latencyXNoCls),
               fmtX(cost.energyXNoCls)});
    }
    t.print(std::cout);
    return 0;
}
