/**
 * @file
 * Fig. 11 — latency and energy of the four Ptolemy variants vs EP,
 * normalized to plain DNN inference, on both networks.
 *
 * Paper shape (AlexNet): BwCu 12.3x/7.7x, BwAb 1.2x/1.1x, FwAb 1.021x
 * (2.1% latency) / modest energy, Hybrid 1.7x/1.4x; EP ~= BwCu. ResNet18
 * overheads are much larger (BwCu 195x/106x) because deeper networks
 * have more important neurons to extract. EP is modeled as BwCu without
 * the compiler optimizations (store-all psums, no pipelining).
 */

#include <cstdio>
#include <iostream>

#include "common/workspace.hh"
#include "hw/simulator.hh"
#include "util/table.hh"

using namespace ptolemy;

namespace
{

void
runModel(const char *bundle_name, const char *paper_role)
{
    auto &b = bench::getBundle(bundle_name);
    const auto variants = bench::makeVariants(b);
    const hw::HwConfig hc = hw::HwConfig::baseline();

    Table t(std::string("Fig. 11 latency/energy vs inference, ") +
            bundle_name + " (plays " + paper_role + ")");
    t.header({"variant", "Latency", "Energy", "Latency (incl. RF tail)",
              "Energy (incl. RF tail)"});

    // Simulated-HW vs measured-SW: the software column is the wall
    // clock of the engine that actually serves (detectBatch cost
    // split through its public seams), not a modeled software
    // configuration of the simulator.
    Table s(std::string("Fig. 11b HW vs optimized software serving, ") +
            bundle_name);
    s.header({"variant", "HW us/detect", "HW us/detect (batch 8)",
              "SW us/detect (measured)", "HW speedup", "batch-8 speedup"});

    auto add = [&](const std::string &name,
                   const path::ExtractionConfig &cfg,
                   compiler::CompileOptions opts) {
        const auto trace = bench::profileTrace(b, cfg);
        const auto cost = bench::costOfTrace(b, cfg, trace, opts);
        t.row({name, fmtX(cost.latencyXNoCls), fmtX(cost.energyXNoCls),
               fmtX(cost.latencyX), fmtX(cost.energyX)});

        // Batch-8 program: weights stay resident across the micro-batch
        // loop, amortizing the cold-weight DMA the way detectBatch
        // amortizes its batched SGEMMs.
        compiler::CompileOptions batched = opts;
        batched.batchSize = 8;
        const auto batch_rep = hw::Simulator(hc).run(
            compiler::Compiler(b.net, cfg, batched).compile(trace));
        const double hw_us = cost.detection.latencyUs(hc.clockMhz);
        const double hw_us_b8 =
            batch_rep.latencyUs(hc.clockMhz) / batched.batchSize;
        const auto sw = bench::measureSwDetectCost(b, cfg);
        s.row({name, fmt(hw_us, 2), fmt(hw_us_b8, 2),
               fmt(sw.totalUs(), 1), fmtX(sw.totalUs() / hw_us),
               fmtX(sw.totalUs() / hw_us_b8)});
    };

    compiler::CompileOptions ptolemy_opts; // all optimizations on
    add("BwCu", variants.bwCu, ptolemy_opts);
    add("BwAb", variants.bwAb, ptolemy_opts);
    add("FwAb", variants.fwAb, ptolemy_opts);
    add("Hybrid", variants.hybrid, ptolemy_opts);

    // EP: same backward cumulative extraction, but as a software pass —
    // no recompute optimization (all partial sums stored) and no
    // pipelining (paper Sec. III-B: 15.4x/50.7x software-only overhead).
    compiler::CompileOptions ep_opts;
    ep_opts.recomputePsums = false;
    ep_opts.neuronPipelining = false;
    ep_opts.layerPipelining = false;
    add("EP", variants.bwCu, ep_opts);

    t.print(std::cout);
    std::printf("\n");
    s.print(std::cout);
    std::printf("\n");
}

} // namespace

int
main()
{
    std::printf("=== Fig. 11: latency and energy comparison ===\n"
                "Columns exclude / include the constant random-forest "
                "classifier tail (negligible at paper scale,\n"
                "comparable to inference at mini-model scale — "
                "EXPERIMENTS.md).\n\n");
    runModel("alexnet100", "AlexNet @ ImageNet");
    runModel("resnet18c100", "ResNet18 @ CIFAR-100");
    return 0;
}
