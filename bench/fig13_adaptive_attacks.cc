/**
 * @file
 * Fig. 13 — detection accuracy under adaptive attacks AT-n that know the
 * defense and match benign activations of the last n layers, compared to
 * the five non-adaptive attacks, for BwCu and FwAb.
 *
 * Paper shape: accuracy decreases as more layers are considered (AT8 is
 * the strongest on the 8-layer AlexNet); small-n adaptive attacks are
 * *easier* to detect than standard attacks; all adaptive accuracies stay
 * well above chance.
 */

#include <cstdio>
#include <iostream>
#include <memory>

#include "attack/adaptive.hh"
#include "attack/suite.hh"
#include "common/workspace.hh"
#include "util/stats.hh"
#include "util/table.hh"

using namespace ptolemy;

int
main()
{
    std::printf("=== Fig. 13: adaptive attacks (AlexNet-class, 8 weighted "
                "layers) ===\n\n");
    auto &b = bench::getBundle("alexnet100");
    const auto variants = bench::makeVariants(b);

    // Adaptive attacks AT1/2/3/8 plus the standard five.
    std::vector<std::unique_ptr<attack::Attack>> attacks;
    for (int n : {1, 2, 3, 8})
        attacks.push_back(std::make_unique<attack::AdaptiveActivationAttack>(
            n, &b.data.train, 5, 50, 0.08));
    for (auto &atk : attack::makeStandardAttacks())
        attacks.push_back(std::move(atk));

    std::vector<std::vector<core::DetectionPair>> pairs;
    for (auto &atk : attacks)
        pairs.push_back(bench::getPairs(b, *atk, 50));

    Table t("Fig. 13 detection accuracy (AUC)");
    std::vector<std::string> header{"variant"};
    for (auto &atk : attacks)
        header.push_back(atk->name());
    t.header(header);

    const std::pair<const char *, const path::ExtractionConfig *>
        variant_rows[] = {{"BwCu", &variants.bwCu},
                          {"FwAb", &variants.fwAb}};
    for (const auto &[name, cfg] : variant_rows) {
        auto bld = bench::makeBuilder(b, *cfg);
        core::DetectorSession sess(bld->model());
        std::vector<std::string> cells{name};
        for (std::size_t a = 0; a < attacks.size(); ++a)
            cells.push_back(
                fmt(core::fitAndScore(*bld, sess, pairs[a], 0.5).auc, 3));
        t.row(cells);
    }
    t.print(std::cout);

    // Validation per Carlini et al. (paper Sec. VII-E): adaptive attacks
    // are unbounded, so report success rate and distortion.
    Table v("Adaptive-attack validation (success rate / distortion)");
    v.header({"attack", "success rate", "avg MSE", "max MSE"});
    for (std::size_t a = 0; a < 4; ++a) {
        std::vector<double> mses;
        for (const auto &p : pairs[a])
            mses.push_back(p.mse);
        v.row({attacks[a]->name(),
               fmt(static_cast<double>(pairs[a].size()) / 50, 2),
               fmt(mean(mses), 4), fmt(maxOf(mses), 4)});
    }
    v.print(std::cout);
    return 0;
}
