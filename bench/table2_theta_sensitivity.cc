/**
 * @file
 * Table II — BwCu sensitivity to theta.
 *
 * Paper (AlexNet): theta 0.1 -> acc 0.86, 4.7x latency, 2.9x energy;
 * theta 0.5 -> 0.94 / 12.3x / 7.7x; theta 0.9 -> 0.91 / 25.7x / 15.6x.
 * Expected shape: accuracy peaks at a mid theta (coverage vs class-path
 * overlap trade-off) while latency/energy grow monotonically with theta.
 */

#include <cstdio>
#include <iostream>

#include "attack/gradient_attacks.hh"
#include "common/workspace.hh"
#include "util/table.hh"

using namespace ptolemy;

int
main()
{
    auto &b = bench::getBundle("alexnet100");
    const int n = static_cast<int>(b.net.weightedNodes().size());
    attack::Fgsm fgsm;
    auto pairs = bench::getPairs(b, fgsm, 120);

    Table t("Table II: BwCu vs theta (AlexNet-class, FGSM) — paper: "
            "0.86/4.7x/2.9x, 0.94/12.3x/7.7x, 0.91/25.7x/15.6x");
    t.header({"theta", "Accuracy (AUC)", "Latency", "Energy",
              "path bits set"});

    for (double theta : {0.1, 0.5, 0.9}) {
        auto cfg = path::ExtractionConfig::bwCu(n, theta);
        auto bld = bench::makeBuilder(b, cfg);
        core::DetectorSession sess(bld->model());
        const double auc = core::fitAndScore(*bld, sess, pairs, 0.5).auc;
        const auto trace = bench::profileTrace(b, cfg);
        const auto cost = bench::costOfTrace(b, cfg, trace);
        t.row({fmt(theta, 1), fmt(auc, 3), fmtX(cost.latencyXNoCls),
               fmtX(cost.energyXNoCls),
               std::to_string(trace.pathBits)});
    }
    t.print(std::cout);
    std::printf("(Latency/energy exclude the constant random-forest tail; "
                "see EXPERIMENTS.md on mini-model scale.)\n");
    return 0;
}
