/**
 * @file
 * Fig. 18 + Sec. VII-G — hardware-provisioning sensitivity of BwCu on
 * the AlexNet-class model.
 *
 * Paper shape: (a) longer merge trees cut latency (31.0x -> 12.3x from
 * length 4 to 32) at nearly constant power (the merge tree is ~2% of
 * power); (b) more sort units barely improve latency (sorting is
 * memory-bound) but raise power significantly (sort units are ~33% of
 * power). Also reproduces the 8-bit and 32x32-array scaling points.
 */

#include <cstdio>
#include <iostream>

#include "common/workspace.hh"
#include "hw/area.hh"
#include "util/table.hh"

using namespace ptolemy;

int
main()
{
    std::printf("=== Fig. 18: hardware resource sensitivity (BwCu, "
                "AlexNet-class) ===\n\n");
    auto &b = bench::getBundle("alexnet100");
    const int n = static_cast<int>(b.net.weightedNodes().size());
    const auto cfg = path::ExtractionConfig::bwCu(n, 0.5);
    const auto trace = bench::profileTrace(b, cfg);

    const auto base_cost = bench::costOfTrace(b, cfg, trace);
    const double base_power = base_cost.detection.avgPowerMw(250.0);

    // Anchor every sweep against the measured software serving cost:
    // the provisioning question only matters relative to what the
    // optimized detectBatch engine already delivers in software.
    const auto sw = bench::measureSwDetectCost(b, cfg);
    const double base_us = base_cost.detection.latencyUs(250.0);
    std::printf("Baseline HW detect: %.2f us/detection; measured SW "
                "serving: %.1f us (fwd %.1f + extract %.1f + score %.1f) "
                "-> %.1fx HW speedup\n\n",
                base_us, sw.totalUs(), sw.forwardUs, sw.extractUs,
                sw.scoreUs, sw.totalUs() / base_us);

    Table a("Fig. 18a: merge-tree length sweep");
    a.header({"merge length", "Latency", "Power (norm.)"});
    for (int len : {4, 8, 16, 32}) {
        hw::HwConfig hc = hw::HwConfig::baseline();
        hc.mergeTreeLen = len;
        const auto c = bench::costOfTrace(b, cfg, trace, {}, hc);
        a.row({std::to_string(len), fmtX(c.latencyXNoCls),
               fmt(c.detection.avgPowerMw(250.0) / base_power, 2) + "x"});
    }
    a.print(std::cout);

    Table s("Fig. 18b: sort-unit count sweep");
    s.header({"sort units", "Latency", "Power (norm.)"});
    for (int units : {2, 4, 8, 16}) {
        hw::HwConfig hc = hw::HwConfig::baseline();
        hc.numSortUnits = units;
        const auto c = bench::costOfTrace(b, cfg, trace, {}, hc);
        // Sort-unit power scales with provisioned units (the paper's
        // 33.4%-of-total observation); model static contribution.
        const double sort_power_scale =
            1.0 + 0.334 * (units / 2.0 - 1.0);
        s.row({std::to_string(units), fmtX(c.latencyXNoCls),
               fmt(c.detection.avgPowerMw(250.0) / base_power *
                       sort_power_scale, 2) + "x"});
    }
    s.print(std::cout);

    // Sec. VII-G scaling points, using FwAb like the paper.
    const auto fwab = bench::makeVariants(b).fwAb;
    Table g("Sec. VII-G: precision / array-size scaling (FwAb)");
    g.header({"config", "area overhead", "FwAb latency", "FwAb energy"});
    const struct
    {
        const char *name;
        hw::HwConfig hc;
    } configs[] = {{"16-bit 20x20 (default)", hw::HwConfig::baseline()},
                   {"8-bit 20x20", hw::HwConfig::eightBit()},
                   {"16-bit 32x32", hw::HwConfig::bigArray()}};
    for (const auto &c : configs) {
        const auto area = hw::areaBreakdown(c.hc);
        const auto cost = bench::costOf(b, fwab, {}, c.hc);
        g.row({c.name, fmtPct(area.overheadFraction),
               fmt(cost.latencyXNoCls, 3) + "x",
               fmt(cost.energyXNoCls, 3) + "x"});
    }
    g.print(std::cout);
    return 0;
}
