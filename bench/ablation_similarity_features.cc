/**
 * @file
 * Ablation (DESIGN.md) — classifier feature set: the paper's overall
 * similarity S alone vs the per-layer similarity vector this library
 * feeds the random forest.
 */

#include <cstdio>
#include <iostream>

#include "attack/suite.hh"
#include "common/workspace.hh"
#include "util/rng.hh"
#include "util/stats.hh"
#include "util/table.hh"

using namespace ptolemy;

namespace
{

/** AUC with features truncated to the first @p k dims. */
double
aucWithFeatureDims(core::DetectorSession &sess,
                   const std::vector<core::DetectionPair> &pairs,
                   std::size_t k)
{
    Rng rng(17);
    std::vector<std::size_t> order(pairs.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    for (std::size_t i = order.size(); i > 1; --i)
        std::swap(order[i - 1], order[rng.below(i)]);
    const std::size_t n_train = pairs.size() / 2;

    auto feats = [&](const nn::Tensor &x) {
        nn::Network::Record rec;
        sess.model().network().inferInto(x, rec); // const online view
        auto f = sess.featuresFor(rec);
        f.resize(std::min(k, f.size()));
        return f;
    };

    classify::FeatureMatrix xs;
    std::vector<int> ys;
    for (std::size_t i = 0; i < n_train; ++i) {
        xs.push_back(feats(pairs[order[i]].clean));
        ys.push_back(0);
        xs.push_back(feats(pairs[order[i]].adversarial));
        ys.push_back(1);
    }
    classify::RandomForest rf;
    rf.fit(xs, ys);

    std::vector<double> scores;
    std::vector<int> labels;
    for (std::size_t i = n_train; i < pairs.size(); ++i) {
        scores.push_back(rf.predictProb(feats(pairs[order[i]].clean)));
        labels.push_back(0);
        scores.push_back(
            rf.predictProb(feats(pairs[order[i]].adversarial)));
        labels.push_back(1);
    }
    return aucScore(scores, labels);
}

} // namespace

int
main()
{
    std::printf("=== Ablation: similarity feature set ===\n\n");
    auto &b = bench::getBundle("alexnet100");
    const int n = static_cast<int>(b.net.weightedNodes().size());
    auto bld =
        bench::makeBuilder(b, path::ExtractionConfig::bwCu(n, 0.5));
    core::DetectorSession sess(bld->model());

    auto attacks = attack::makeStandardAttacks();
    Table t("AUC by feature set (feature 0 is the paper's overall S; "
            "1..n are per-layer similarities)");
    t.header({"attack", "overall S only", "S + per-layer"});
    for (auto &atk : attacks) {
        auto pairs = bench::getPairs(b, *atk, 80);
        t.row({atk->name(), fmt(aucWithFeatureDims(sess, pairs, 1), 3),
               fmt(aucWithFeatureDims(sess, pairs, 1 + n), 3)});
    }
    t.print(std::cout);
    return 0;
}
